"""Unit geometry tests."""

import pytest

from repro.errors import FloorplanError
from repro.floorplan.unit import Unit, UnitKind


def make(x=0.0, y=0.0, w=1.0, h=1.0, kind=UnitKind.CORE, name="u"):
    return Unit(name, x, y, w, h, kind)


class TestConstruction:
    def test_area(self):
        assert make(w=2e-3, h=3e-3).area == pytest.approx(6e-6)

    def test_edges(self):
        unit = make(x=1.0, y=2.0, w=3.0, h=4.0)
        assert unit.x2 == pytest.approx(4.0)
        assert unit.y2 == pytest.approx(6.0)

    def test_center(self):
        unit = make(x=1.0, y=1.0, w=2.0, h=4.0)
        assert unit.center == pytest.approx((2.0, 3.0))

    def test_default_kind_is_other(self):
        assert Unit("u", 0, 0, 1, 1).kind is UnitKind.OTHER

    @pytest.mark.parametrize("w,h", [(0.0, 1.0), (1.0, 0.0), (-1.0, 1.0)])
    def test_rejects_non_positive_size(self, w, h):
        with pytest.raises(FloorplanError):
            make(w=w, h=h)

    def test_rejects_negative_origin(self):
        with pytest.raises(FloorplanError):
            make(x=-0.1)

    def test_frozen(self):
        unit = make()
        with pytest.raises(AttributeError):
            unit.x = 5.0


class TestOverlap:
    def test_disjoint_is_zero(self):
        assert make().overlap_area(make(x=2.0, name="v")) == 0.0

    def test_touching_edges_is_zero(self):
        assert make(w=1.0).overlap_area(make(x=1.0, name="v")) == 0.0

    def test_partial_overlap(self):
        a = make(w=2.0, h=2.0)
        b = make(x=1.0, y=1.0, w=2.0, h=2.0, name="v")
        assert a.overlap_area(b) == pytest.approx(1.0)

    def test_containment(self):
        outer = make(w=4.0, h=4.0)
        inner = make(x=1.0, y=1.0, w=1.0, h=1.0, name="v")
        assert outer.overlap_area(inner) == pytest.approx(inner.area)

    def test_symmetric(self):
        a = make(w=2.0, h=3.0)
        b = make(x=1.0, y=2.0, w=2.0, h=3.0, name="v")
        assert a.overlap_area(b) == pytest.approx(b.overlap_area(a))

    def test_overlap_rect_matches_unit_overlap(self):
        a = make(w=2.0, h=2.0)
        assert a.overlap_rect(1.0, 1.0, 3.0, 3.0) == pytest.approx(1.0)


class TestContainsPoint:
    def test_inside(self):
        assert make().contains_point(0.5, 0.5)

    def test_lower_edge_closed_upper_open(self):
        unit = make()
        assert unit.contains_point(0.0, 0.0)
        assert not unit.contains_point(1.0, 1.0)

    def test_outside(self):
        assert not make().contains_point(1.5, 0.5)
