"""Campaign subsystem tests: keys, specs, store, executors, reports."""

import os
import subprocess
import sys
from dataclasses import replace
from pathlib import Path

import numpy as np
import pytest

from repro.analysis.result_io import load_result, save_result
from repro.analysis.runner import ExperimentRunner, RunSpec
from repro.analysis.sweep import sweep
from repro.campaign import (
    CampaignExecutor,
    CampaignSpec,
    ResultStore,
    campaign_report,
    campaign_status,
    prefix_key,
    run_key,
    spec_from_dict,
    spec_to_dict,
)
from repro.cli import main
from repro.errors import ConfigurationError

SRC_DIR = str(Path(__file__).resolve().parents[1] / "src")


def tiny_spec(policy="Default", seed=1, **overrides) -> RunSpec:
    """A seconds-scale run for integration tests."""
    base = dict(exp_id=1, policy=policy, duration_s=2.0, seed=seed,
                grid=(4, 4))
    base.update(overrides)
    return RunSpec(**base)


def tiny_campaign(name="tiny", policies=("Default", "Adapt3D"), seeds=(1,),
                  **overrides) -> CampaignSpec:
    base = dict(
        name=name, exp_ids=(1,), policies=tuple(policies),
        durations_s=(2.0,), seeds=tuple(seeds), grids=((4, 4),),
    )
    base.update(overrides)
    return CampaignSpec(**base)


class CountingRunner(ExperimentRunner):
    """Counts simulation executions for resume/skip assertions."""

    def __init__(self):
        super().__init__()
        self.run_calls = 0

    def run(self, spec):
        self.run_calls += 1
        return super().run(spec)


class TestRunKey:
    def test_deterministic_within_process(self):
        spec = tiny_spec(policy="Adapt3D&DVFS_TT",
                         policy_params=(("beta_inc", 0.02),))
        assert run_key(spec) == run_key(replace(spec))

    def test_readable_prefix(self):
        key = run_key(tiny_spec(policy="Adapt3D&DVFS_TT"))
        assert key.startswith("exp1-adapt3d_dvfs_tt-")

    def test_every_field_feeds_the_hash(self):
        base = tiny_spec()
        variants = [
            replace(base, exp_id=2),
            replace(base, policy="Adapt3D"),
            replace(base, duration_s=3.0),
            replace(base, with_dpm=True),
            replace(base, seed=2),
            replace(base, grid=(8, 8)),
            replace(base, benchmark_mix=(("gzip", 4),)),
            replace(base, policy_params=(("beta_inc", 0.02),)),
            replace(base, sensor_noise_sigma=0.5),
            replace(base, workload_mix="web_heavy"),
            replace(base, fidelity="span"),
        ]
        keys = {run_key(spec) for spec in [base] + variants}
        assert len(keys) == len(variants) + 1

    @pytest.mark.parametrize("hash_seed", ["1", "31337"])
    def test_stable_across_python_sessions(self, hash_seed):
        """The key must not depend on interpreter hash randomization."""
        spec = tiny_spec(policy="Adapt3D&DVFS_TT", seed=7,
                         benchmark_mix=(("gzip", 2), ("gcc", 1)),
                         policy_params=(("beta_inc", 0.02),))
        code = (
            "from repro.analysis.runner import RunSpec\n"
            "from repro.campaign import run_key\n"
            "spec = RunSpec(exp_id=1, policy='Adapt3D&DVFS_TT',"
            " duration_s=2.0, seed=7, grid=(4, 4),"
            " benchmark_mix=(('gzip', 2), ('gcc', 1)),"
            " policy_params=(('beta_inc', 0.02),))\n"
            "print(run_key(spec))\n"
        )
        env = dict(os.environ)
        env["PYTHONPATH"] = SRC_DIR
        env["PYTHONHASHSEED"] = hash_seed
        out = subprocess.run(
            [sys.executable, "-c", code], env=env, capture_output=True,
            text=True, check=True,
        )
        assert out.stdout.strip() == run_key(spec)

    def test_spec_dict_round_trip(self):
        spec = tiny_spec(policy="Adapt3D", with_dpm=True,
                         benchmark_mix=(("gzip", 2),),
                         policy_params=(("history_window", 5),))
        assert spec_from_dict(spec_to_dict(spec)) == spec

    def test_unknown_spec_field_rejected(self):
        with pytest.raises(ConfigurationError):
            spec_from_dict({"exp_id": 1, "policy": "Default", "bogus": 1})


class TestGoldenKey:
    """Pin the key derivation to frozen digests.

    Result stores index completed runs by ``run_key``; if the digest for a
    fixed spec ever changes, every cached campaign silently misses and
    re-runs.  These digests were frozen when KEY_VERSION reached 5 — a
    mismatch means either an accidental serialization change (fix it) or a
    deliberate one (bump KEY_VERSION in repro.campaign.spec, refresh the
    contract golden via ``repro-dtm lint --update-golden``, then update the
    digests here).
    """

    GOLDEN_SPEC_KWARGS = dict(
        exp_id=4,
        policy="Adapt3D&DVFS_TT",
        duration_s=120.0,
        with_dpm=True,
        seed=2009,
        grid=(8, 8),
        benchmark_mix=(("gcc", 2), ("gzip", 2)),
        policy_params=(("beta_inc", 0.02),),
        thermal_solver="exponential",
        sensor_noise_sigma=0.5,
        workload_mix="server",
        fidelity="span",
    )
    GOLDEN_RUN_KEY = "exp4-adapt3d_dvfs_tt-fc63c8928ca3"
    GOLDEN_PREFIX_KEY = "exp4-adapt3d_dvfs_tt-pfx-c9a7fd913c0f"

    def test_run_key_matches_frozen_digest(self):
        assert run_key(RunSpec(**self.GOLDEN_SPEC_KWARGS)) == self.GOLDEN_RUN_KEY

    def test_prefix_key_matches_frozen_digest(self):
        spec = RunSpec(**self.GOLDEN_SPEC_KWARGS)
        assert prefix_key(spec) == self.GOLDEN_PREFIX_KEY

    def test_telemetry_does_not_feed_the_key(self):
        """Observability toggles must never invalidate cached results."""
        quiet = RunSpec(**self.GOLDEN_SPEC_KWARGS)
        loud = replace(quiet, telemetry=True)
        assert run_key(loud) == self.GOLDEN_RUN_KEY
        assert prefix_key(loud) == self.GOLDEN_PREFIX_KEY


class TestCampaignSpec:
    def test_expand_is_cartesian(self):
        campaign = tiny_campaign(seeds=(1, 2), policies=("Default", "Adapt3D"))
        specs = campaign.expand()
        assert len(specs) == 4
        assert {(s.policy, s.seed) for s in specs} == {
            ("Default", 1), ("Default", 2), ("Adapt3D", 1), ("Adapt3D", 2),
        }

    def test_expand_dedupes_extra_runs(self):
        campaign = tiny_campaign(extra_runs=(tiny_spec(),))
        assert len(campaign.expand()) == 2  # grid already contains it

    def test_extra_runs_carry_policy_params(self):
        variant = tiny_spec(policy="Adapt3D",
                            policy_params=(("beta_inc", 0.05),))
        campaign = tiny_campaign(extra_runs=(variant,))
        assert variant in campaign.expand()

    def test_json_round_trip(self, tmp_path):
        campaign = tiny_campaign(
            seeds=(1, 2),
            benchmark_mixes=(None, (("gzip", 4),)),
            extra_runs=(tiny_spec(policy="Adapt3D",
                                  policy_params=(("beta_dec", 0.5),)),),
        )
        path = campaign.to_json(tmp_path / "spec.json")
        loaded = CampaignSpec.from_json(path)
        assert loaded == campaign
        assert loaded.keys() == campaign.keys()

    def test_empty_axis_rejected(self):
        with pytest.raises(ConfigurationError):
            tiny_campaign(policies=())

    def test_unknown_field_rejected(self):
        with pytest.raises(ConfigurationError):
            CampaignSpec.from_dict({"name": "x", "nope": 1})

    def test_fidelity_axis_expands_and_round_trips(self, tmp_path):
        campaign = tiny_campaign(fidelities=("eager", "span"))
        specs = campaign.expand()
        assert len(specs) == 4
        assert {s.fidelity for s in specs} == {"eager", "span"}
        # Span and eager runs address different store entries.
        assert len(set(campaign.keys())) == 4
        loaded = CampaignSpec.from_json(
            campaign.to_json(tmp_path / "spec.json")
        )
        assert loaded == campaign

    def test_unknown_fidelity_rejected(self):
        with pytest.raises(ConfigurationError):
            tiny_campaign(fidelities=("sloppy",))


@pytest.fixture(scope="module")
def tiny_result():
    return ExperimentRunner().run(tiny_spec())


class TestResultRoundTrip:
    def test_save_load_preserves_arrays(self, tiny_result, tmp_path):
        save_result(tiny_result, tmp_path / "run")
        loaded = load_result(tmp_path / "run")
        assert loaded.unit_names == tiny_result.unit_names
        assert loaded.core_names == tiny_result.core_names
        np.testing.assert_allclose(
            loaded.unit_temps_k, tiny_result.unit_temps_k, atol=1e-3)
        np.testing.assert_allclose(
            loaded.core_peak_temps_k, tiny_result.core_peak_temps_k, atol=1e-3)
        np.testing.assert_allclose(
            loaded.layer_spreads_k, tiny_result.layer_spreads_k, atol=1e-3)
        np.testing.assert_allclose(
            loaded.total_power_w, tiny_result.total_power_w, atol=1e-4)
        np.testing.assert_array_equal(
            loaded.vf_indices, tiny_result.vf_indices)
        np.testing.assert_array_equal(
            loaded.core_states, tiny_result.core_states)
        assert loaded.energy_j == pytest.approx(tiny_result.energy_j)
        assert loaded.policy_name == tiny_result.policy_name

    def test_completed_jobs_survive(self, tiny_result, tmp_path):
        save_result(tiny_result, tmp_path / "run")
        loaded = load_result(tmp_path / "run")
        original = tiny_result.completed_jobs()
        assert len(loaded.completed_jobs()) == len(original)
        assert loaded.completed_jobs()[0].response_time == pytest.approx(
            original[0].response_time, abs=1e-3)

    def test_load_missing_stem_raises(self, tmp_path):
        with pytest.raises(ConfigurationError):
            load_result(tmp_path / "nothing")


class TestResultStore:
    def test_save_has_load(self, tiny_result, tmp_path):
        store = ResultStore(tmp_path)
        spec = tiny_spec()
        key = store.save(spec, tiny_result)
        assert key == run_key(spec)
        assert store.has(key)
        assert store.load_spec(key) == spec
        loaded = store.load(key)
        assert loaded.n_ticks == tiny_result.n_ticks

    def test_index_survives_reopen(self, tiny_result, tmp_path):
        spec = tiny_spec()
        ResultStore(tmp_path).save(spec, tiny_result)
        reopened = ResultStore(tmp_path)
        assert reopened.has(run_key(spec))

    def test_failure_entries(self, tmp_path):
        store = ResultStore(tmp_path)
        spec = tiny_spec(seed=99)
        key = store.record_failure(spec, "boom")
        assert not store.has(key)
        assert store.failures() == {key: "boom"}
        with pytest.raises(ConfigurationError, match="boom"):
            store.load(key)

    def test_query_filters(self, tiny_result, tmp_path):
        store = ResultStore(tmp_path)
        store.save(tiny_spec(), tiny_result)
        store.record_failure(tiny_spec(policy="Adapt3D"), "x")
        assert store.query(policy="Default") == [run_key(tiny_spec())]
        assert store.query(status="error") == [
            run_key(tiny_spec(policy="Adapt3D"))
        ]
        assert store.query(exp_id=3) == []

    def test_discard_forces_rerun(self, tiny_result, tmp_path):
        store = ResultStore(tmp_path)
        key = store.save(tiny_spec(), tiny_result)
        store.discard(key)
        assert not store.has(key)
        assert not (tmp_path / "runs" / key).exists()

    def test_thermal_indices_round_trip(self, tmp_path):
        store = ResultStore(tmp_path)
        assert store.load_thermal_indices(1, (4, 4)) is None
        store.save_thermal_indices(1, (4, 4), {"c0": 0.25, "c1": 0.75})
        assert store.load_thermal_indices(1, (4, 4)) == {
            "c0": 0.25, "c1": 0.75,
        }


class TestSerialExecutor:
    def test_resume_skips_completed_runs(self, tmp_path):
        campaign = tiny_campaign(seeds=(1, 2))
        store = ResultStore(tmp_path)
        runner = CountingRunner()
        executor = CampaignExecutor(store=store, backend="serial",
                                    runner=runner)
        first = executor.run_campaign(campaign)
        assert first.counts() == {"ok": 4}
        assert runner.run_calls == 4

        second = executor.run_campaign(campaign)
        assert second.counts() == {"cached": 4}
        assert runner.run_calls == 4  # nothing re-simulated

    def test_failed_run_recorded_without_killing_campaign(self, tmp_path):
        bad = tiny_spec(seed=5, benchmark_mix=(("not-a-benchmark", 4),))
        campaign = tiny_campaign(policies=("Default",), extra_runs=(bad,))
        store = ResultStore(tmp_path)
        run = CampaignExecutor(store=store, backend="serial").run_campaign(
            campaign
        )
        assert run.counts() == {"ok": 1, "error": 1}
        assert "not-a-benchmark" in run.failed()[run_key(bad)]
        assert store.failures()  # persisted too
        # the good run is loadable
        assert store.load(run_key(tiny_spec())).n_ticks == 20

    def test_failed_key_retried_after_discard(self, tmp_path):
        bad = tiny_spec(seed=5, benchmark_mix=(("not-a-benchmark", 4),))
        campaign = tiny_campaign(policies=("Default",), extra_runs=(bad,))
        store = ResultStore(tmp_path)
        executor = CampaignExecutor(store=store, backend="serial")
        executor.run_campaign(campaign)
        # A failed entry does not read as completed, so the next
        # invocation retries it (and fails again, deterministically).
        rerun = executor.run_campaign(campaign)
        assert rerun.counts() == {"cached": 1, "error": 1}

    def test_thermal_indices_shared_through_store(self, tmp_path):
        store = ResultStore(tmp_path)
        executor = CampaignExecutor(store=store, backend="serial")
        executor.run_campaign(tiny_campaign(policies=("Default",)))
        persisted = store.load_thermal_indices(1, (4, 4))
        assert persisted is not None and len(persisted) == 8

        # A fresh runner seeds from the store instead of re-solving.
        runner = CountingRunner()
        executor2 = CampaignExecutor(store=store, backend="serial",
                                     runner=runner)
        executor2.run_campaign(tiny_campaign(policies=("Default",),
                                             seeds=(123,)))
        assert runner._index_cache[(1, (4, 4))] == persisted

    def test_progress_events(self, tmp_path):
        events = []
        store = ResultStore(tmp_path)
        executor = CampaignExecutor(
            store=store, backend="serial",
            progress=lambda event, key, detail: events.append(event),
        )
        executor.run_campaign(tiny_campaign(policies=("Default",)))
        assert events == ["start", "ok"]
        events.clear()
        executor.run_campaign(tiny_campaign(policies=("Default",)))
        assert events == ["cached"]

    def test_run_specs_strict_raises(self, tmp_path):
        executor = CampaignExecutor(store=ResultStore(tmp_path),
                                    backend="serial")
        with pytest.raises(Exception):
            executor.run_specs(
                [tiny_spec(benchmark_mix=(("not-a-benchmark", 1),))]
            )

    def test_unknown_backend_rejected(self):
        with pytest.raises(ConfigurationError):
            CampaignExecutor(backend="quantum")


class TestDelegation:
    def test_run_policies_goes_through_executor(self):
        runner = CountingRunner()
        results = runner.run_policies(tiny_spec(), ["Default", "Adapt3D"])
        assert set(results) == {"Default", "Adapt3D"}
        assert runner.run_calls == 2
        assert results["Default"].policy_name == "Default"

    def test_run_policies_with_store_executor(self, tmp_path):
        runner = CountingRunner()
        store = ResultStore(tmp_path)
        executor = CampaignExecutor(store=store, backend="serial",
                                    runner=runner)
        first = runner.run_policies(tiny_spec(), ["Default"], executor)
        again = runner.run_policies(tiny_spec(), ["Default"], executor)
        assert runner.run_calls == 1  # second call served from the store
        np.testing.assert_array_equal(
            first["Default"].unit_temps_k, again["Default"].unit_temps_k)

    def test_sweep_default_serial(self):
        assert sweep([1, 2, 3], lambda v: v * v) == [(1, 1), (2, 4), (3, 9)]

    def test_sweep_accepts_executor(self):
        executor = CampaignExecutor(backend="serial")
        assert sweep([2, 4], lambda v: v + 1, executor) == [(2, 3), (4, 5)]


def _worker_seeded_index_keys(_value):
    """Module-level map() payload: the worker runner's seeded combos."""
    from repro.campaign.executor import worker_runner

    return sorted(worker_runner().seeded_indices())


class TestMapSeeding:
    def test_serial_map_unchanged(self):
        executor = CampaignExecutor(backend="serial")
        assert executor.map(len, ["ab", "c"]) == [2, 1]

    @pytest.mark.slow
    def test_parallel_map_seeds_worker_indices(self):
        runner = ExperimentRunner()
        runner.seed_thermal_indices(1, (4, 4), {"cpu0_0": 1.0})
        runner.seed_thermal_indices(2, (8, 8), {"cpu0_0": 0.5})
        executor = CampaignExecutor(
            backend="parallel", max_workers=2, runner=runner
        )
        for keys in executor.map(_worker_seeded_index_keys, [0, 1, 2]):
            # Every worker ran _init_worker with the driver's cache, so
            # no process redoes the steady-state characterization.
            assert keys == [(1, (4, 4)), (2, (8, 8))]


class TestStoreStalePayloads:
    """Crash-consistency: run dirs must never mix files across saves."""

    def _stale_file(self, store, key):
        run_dir = store.root / "runs" / key
        run_dir.mkdir(parents=True, exist_ok=True)
        stale = run_dir / "leftover.csv"
        stale.write_text("partial write from a crashed save\n")
        return stale

    def test_save_clears_stale_run_dir(self, tiny_result, tmp_path):
        store = ResultStore(tmp_path)
        spec = tiny_spec()
        stale = self._stale_file(store, run_key(spec))
        store.save(spec, tiny_result)
        assert not stale.exists()
        assert store.has(run_key(spec))
        store.load(run_key(spec))  # round-trips cleanly

    def test_record_failure_clears_stale_run_dir(self, tiny_result, tmp_path):
        store = ResultStore(tmp_path)
        spec = tiny_spec()
        stale = self._stale_file(store, run_key(spec))
        store.record_failure(spec, "boom")
        assert not stale.exists()
        assert not (store.root / "runs" / run_key(spec)).exists()
        assert run_key(spec) in store.failures()

    def test_has_tolerates_missing_payload(self, tiny_result, tmp_path):
        import shutil

        store = ResultStore(tmp_path)
        spec = tiny_spec()
        key = store.save(spec, tiny_result)
        assert store.has(key)
        shutil.rmtree(store.root / "runs" / key)
        # Manifest says ok but the payload is gone: treat as absent so
        # the campaign re-runs the spec instead of failing at load.
        assert not store.has(key)

    def test_has_tolerates_partial_payload(self, tiny_result, tmp_path):
        store = ResultStore(tmp_path)
        spec = tiny_spec()
        key = store.save(spec, tiny_result)
        (store.root / "runs" / key / "result_meta.json").unlink()
        assert not store.has(key)

    def test_missing_payload_triggers_rerun(self, tmp_path):
        import shutil

        runner = CountingRunner()
        store = ResultStore(tmp_path)
        executor = CampaignExecutor(store=store, backend="serial",
                                    runner=runner)
        spec = tiny_spec()
        executor.run_specs([spec])
        assert runner.run_calls == 1
        shutil.rmtree(store.root / "runs" / run_key(spec))
        executor.run_specs([spec])
        assert runner.run_calls == 2


class TestReports:
    def test_status_and_report(self, tmp_path):
        campaign = tiny_campaign()
        store = ResultStore(tmp_path)
        CampaignExecutor(store=store, backend="serial").run_campaign(campaign)
        status = campaign_status(store, campaign)
        assert status["ok"] == 2 and status["pending"] == 0
        text = campaign_report(store, campaign)
        assert "Adapt3D" in text and "hot%" in text

    def test_report_marks_missing_runs(self, tmp_path):
        campaign = tiny_campaign()
        store = ResultStore(tmp_path)
        text = campaign_report(store, campaign)
        assert "pending" in text
        status = campaign_status(store, campaign)
        assert status["pending"] == 2


class TestCampaignCli:
    def test_run_status_report(self, tmp_path, capsys, monkeypatch):
        monkeypatch.chdir(tmp_path)
        spec_path = tiny_campaign(name="cli").to_json(tmp_path / "cli.json")
        assert main(["campaign", "run", str(spec_path), "--serial"]) == 0
        out = capsys.readouterr().out
        assert "2/2 done" in out
        # resumes from the default store location (campaigns/<name>)
        assert main(["campaign", "run", str(spec_path), "--serial"]) == 0
        assert "cached" in capsys.readouterr().out
        assert main(["campaign", "status", str(spec_path)]) == 0
        assert main(["campaign", "report", str(spec_path)]) == 0
        assert "Adapt3D" in capsys.readouterr().out

    def test_missing_spec_file_fails_cleanly(self, tmp_path, capsys):
        assert main(["campaign", "status", str(tmp_path / "nope.json")]) == 2


class TestFormatError:
    """_format_error must point at the root cause of a wrapped failure."""

    def _raise_wrapped(self):
        def inner():
            raise ValueError("the real problem")

        try:
            inner()
        except ValueError as exc:
            raise ConfigurationError("run failed") from exc

    def test_explicit_cause_chain_reports_root_frame(self):
        from repro.campaign.executor import _format_error

        try:
            self._raise_wrapped()
        except ConfigurationError as exc:
            message = _format_error(exc)
        assert message.startswith("ConfigurationError: run failed")
        assert "caused by ValueError: the real problem" in message
        # The frame is the inner raise, not the re-raise site.
        assert "test_campaign.py" in message

    def test_implicit_context_chain(self):
        from repro.campaign.executor import _format_error

        try:
            try:
                {}["missing"]
            except KeyError:
                raise ConfigurationError("lookup failed")
        except ConfigurationError as exc:
            message = _format_error(exc)
        assert "caused by KeyError" in message

    def test_suppressed_context_ignored(self):
        from repro.campaign.executor import _format_error

        try:
            try:
                {}["missing"]
            except KeyError:
                raise ConfigurationError("clean error") from None
        except ConfigurationError as exc:
            message = _format_error(exc)
        assert message.startswith("ConfigurationError: clean error")
        assert "caused by" not in message

    def test_cyclic_chain_terminates(self):
        from repro.campaign.executor import _format_error

        exc = ValueError("a")
        exc.__context__ = exc
        assert _format_error(exc).startswith("ValueError: a")

    def test_plain_exception_unchanged(self):
        from repro.campaign.executor import _format_error

        try:
            raise ValueError("plain")
        except ValueError as exc:
            message = _format_error(exc)
        assert message.startswith("ValueError: plain")
        assert "caused by" not in message

    def test_campaign_failure_surfaces_root_cause(self, tmp_path):
        """End to end: a failed run's store entry names the real frame."""
        bad = tiny_spec(seed=5, benchmark_mix=(("not-a-benchmark", 4),))
        store = ResultStore(tmp_path)
        CampaignExecutor(store=store, backend="serial").run_campaign(
            tiny_campaign(policies=("Default",), extra_runs=(bad,))
        )
        error = store.failures()[run_key(bad)]
        assert "not-a-benchmark" in error
        assert ".py:" in error  # carries a source location


class TestTelemetryCampaign:
    def test_run_key_ignores_telemetry_flag(self):
        spec = tiny_spec()
        assert run_key(spec) == run_key(replace(spec, telemetry=True))
        assert "telemetry" not in spec_to_dict(replace(spec, telemetry=True))

    def test_sidecar_saved_and_reattached(self, tmp_path):
        store = ResultStore(tmp_path)
        executor = CampaignExecutor(store=store, backend="serial",
                                    telemetry=True)
        campaign = tiny_campaign(policies=("Default",))
        assert executor.run_campaign(campaign).counts() == {"ok": 1}
        key = run_key(tiny_spec())
        assert store.has_telemetry(key)
        telemetry = store.load_telemetry(key)
        assert telemetry["job_stats"]["completions"] > 0
        assert "phases" in telemetry
        assert store.load(key).telemetry == telemetry

    def test_plain_runs_have_no_sidecar(self, tmp_path):
        store = ResultStore(tmp_path)
        CampaignExecutor(store=store, backend="serial").run_campaign(
            tiny_campaign(policies=("Default",))
        )
        key = run_key(tiny_spec())
        assert not store.has_telemetry(key)
        assert store.load_telemetry(key) is None
        assert store.load(key).telemetry is None

    def test_telemetry_run_reuses_plain_cache(self, tmp_path):
        """Key neutrality end to end: a telemetry-on campaign treats
        plain stored results as cache hits (and records no sidecar)."""
        store = ResultStore(tmp_path)
        campaign = tiny_campaign(policies=("Default",))
        CampaignExecutor(store=store, backend="serial").run_campaign(campaign)
        runner = CountingRunner()
        rerun = CampaignExecutor(store=store, backend="serial",
                                 runner=runner, telemetry=True
                                 ).run_campaign(campaign)
        assert rerun.counts() == {"cached": 1}
        assert runner.run_calls == 0

    def test_campaign_telemetry_aggregation(self, tmp_path):
        from repro.campaign import campaign_telemetry, format_telemetry

        store = ResultStore(tmp_path)
        campaign = tiny_campaign()
        CampaignExecutor(store=store, backend="serial",
                         telemetry=True).run_campaign(campaign)
        summary = campaign_telemetry(store, campaign)
        assert summary["ok"] == 2
        assert summary["with_telemetry"] == 2
        assert summary["phases"]["runs"] == 2
        assert summary["job_totals"]["completions"] > 0
        rendered = format_telemetry(summary)
        assert "2/2 completed runs" in rendered
        assert "tick phases" in rendered

    def test_aggregation_tolerates_partial_coverage(self, tmp_path):
        from repro.campaign import campaign_telemetry

        store = ResultStore(tmp_path)
        campaign = tiny_campaign()
        specs = campaign.expand()
        CampaignExecutor(store=store, backend="serial").run_specs(specs[:1])
        CampaignExecutor(store=store, backend="serial",
                         telemetry=True).run_specs(specs[1:])
        summary = campaign_telemetry(store, campaign)
        assert summary["ok"] == 2
        assert summary["with_telemetry"] == 1

    def test_prefix_hit_counter(self, tmp_path):
        store = ResultStore(tmp_path)
        long = tiny_spec(duration_s=4.0)
        CampaignExecutor(store=store, backend="serial").run_specs([long])
        assert store.prefix_hits == 0
        short = tiny_spec(duration_s=2.0)
        assert store.serve_prefix(short) is not None
        assert store.prefix_hits == 1
        # Truncations carry no sidecar (stats of the longer run are not
        # the shorter run's stats).
        assert not store.has_telemetry(run_key(short))


class TestProgressEvents:
    """Event-sequence contracts of the progress callback per backend."""

    def _record(self, events):
        return lambda event, key, detail: events.append((event, key))

    def test_serial_error_sequence(self, tmp_path):
        bad = tiny_spec(seed=5, benchmark_mix=(("not-a-benchmark", 4),))
        events = []
        CampaignExecutor(
            store=ResultStore(tmp_path), backend="serial",
            progress=self._record(events),
        ).run_campaign(tiny_campaign(policies=("Default",),
                                     extra_runs=(bad,)))
        by_key = {}
        for event, key in events:
            by_key.setdefault(key, []).append(event)
        assert by_key[run_key(tiny_spec())] == ["start", "ok"]
        assert by_key[run_key(bad)] == ["start", "error"]

    def test_serial_cached_and_prefix_events(self, tmp_path):
        store = ResultStore(tmp_path)
        CampaignExecutor(store=store, backend="serial").run_specs(
            [tiny_spec(duration_s=4.0)]
        )
        events = []
        executor = CampaignExecutor(store=store, backend="serial",
                                    progress=self._record(events))
        executor.run_specs([tiny_spec(duration_s=4.0),
                            tiny_spec(duration_s=2.0)])
        assert [e for e, _ in events] == ["cached", "prefix"]

    @pytest.mark.slow
    def test_parallel_event_sequence(self, tmp_path):
        bad = tiny_spec(seed=5, benchmark_mix=(("not-a-benchmark", 4),))
        events = []
        CampaignExecutor(
            store=ResultStore(tmp_path), backend="parallel", max_workers=2,
            progress=self._record(events),
        ).run_campaign(tiny_campaign(extra_runs=(bad,)))
        by_key = {}
        for event, key in events:
            by_key.setdefault(key, []).append(event)
        for spec in tiny_campaign().expand():
            assert by_key[run_key(spec)] == ["start", "ok"]
        assert by_key[run_key(bad)] == ["start", "error"]

    @pytest.mark.slow
    def test_batched_poisoned_batch_event_sequence(self, tmp_path):
        """Batch mates of a failing spec re-emit start on the singleton
        retry and still end with exactly one ok."""
        bad = tiny_spec(seed=5, benchmark_mix=(("not-a-benchmark", 4),))
        events = []
        run = CampaignExecutor(
            store=ResultStore(tmp_path), backend="batched", max_workers=1,
            batch_size=8, progress=self._record(events),
        ).run_campaign(tiny_campaign(policies=("Default",), seeds=(1, 2),
                                     extra_runs=(bad,)))
        assert run.counts() == {"ok": 2, "error": 1}
        by_key = {}
        for event, key in events:
            by_key.setdefault(key, []).append(event)
        for spec in (tiny_spec(seed=1), tiny_spec(seed=2)):
            key = run_key(spec)
            # One start from the batch attempt, one from the retry.
            assert by_key[key] == ["start", "start", "ok"]
        assert by_key[run_key(bad)] == ["start", "start", "error"]


@pytest.mark.slow
class TestParallelExecutor:
    def test_serial_parallel_equivalence(self, tmp_path):
        campaign = tiny_campaign(seeds=(1, 2))
        serial_store = ResultStore(tmp_path / "serial")
        parallel_store = ResultStore(tmp_path / "parallel")
        CampaignExecutor(store=serial_store, backend="serial").run_campaign(
            campaign
        )
        run = CampaignExecutor(
            store=parallel_store, backend="parallel", max_workers=2
        ).run_campaign(campaign)
        assert run.counts() == {"ok": 4}
        for key in campaign.keys():
            a = serial_store.load(key)
            b = parallel_store.load(key)
            np.testing.assert_array_equal(a.unit_temps_k, b.unit_temps_k)
            np.testing.assert_array_equal(a.vf_indices, b.vf_indices)
            assert a.energy_j == b.energy_j

    def test_worker_failure_isolated(self, tmp_path):
        bad = tiny_spec(seed=5, benchmark_mix=(("not-a-benchmark", 4),))
        campaign = tiny_campaign(policies=("Default",), extra_runs=(bad,))
        store = ResultStore(tmp_path)
        run = CampaignExecutor(
            store=store, backend="parallel", max_workers=2
        ).run_campaign(campaign)
        assert run.counts() == {"ok": 1, "error": 1}
        assert "not-a-benchmark" in store.failures()[run_key(bad)]

    def test_parallel_resume(self, tmp_path):
        campaign = tiny_campaign()
        store = ResultStore(tmp_path)
        executor = CampaignExecutor(store=store, backend="parallel",
                                    max_workers=2)
        assert executor.run_campaign(campaign).counts() == {"ok": 2}
        assert executor.run_campaign(campaign).counts() == {"cached": 2}


class TestPrefixCache:
    """Cross-grid prefix serving: duration-d requests filled by
    truncating stored longer runs of the same spec family."""

    def test_find_prefix_picks_shortest_sufficient(self, tmp_path):
        store = ResultStore(tmp_path)
        runner = ExperimentRunner()
        long_spec = tiny_spec(duration_s=4.0)
        longest_spec = tiny_spec(duration_s=6.0)
        store.save(long_spec, runner.run(long_spec))
        store.save(longest_spec, runner.run(longest_spec))
        want = tiny_spec(duration_s=2.0)
        assert store.find_prefix(want) == run_key(long_spec)
        assert store.find_prefix(tiny_spec(duration_s=5.0)) == run_key(
            longest_spec
        )
        assert store.find_prefix(tiny_spec(duration_s=8.0)) is None
        # Different family members never match.
        assert store.find_prefix(tiny_spec(duration_s=2.0, seed=9)) is None
        assert store.find_prefix(
            tiny_spec(duration_s=2.0, policy="Adapt3D")
        ) is None

    def test_serve_prefix_series_match_fresh_run(self, tmp_path):
        """A served prefix stores exactly the per-tick series a fresh
        short run of the same spec would store."""
        store = ResultStore(tmp_path)
        runner = ExperimentRunner()
        long_spec = tiny_spec(duration_s=4.0)
        store.save(long_spec, runner.run(long_spec))
        short_spec = tiny_spec(duration_s=2.0)
        served = store.serve_prefix(short_spec)
        assert served is not None
        assert store.has(run_key(short_spec))
        fresh = runner.run(short_spec)
        stem = tmp_path / "fresh" / "result"
        save_result(fresh, stem)
        fresh_rt = load_result(stem)
        for name in ("times", "unit_temps_k", "core_temps_k",
                     "core_peak_temps_k", "layer_spreads_k", "utilization",
                     "vf_indices", "core_states", "total_power_w"):
            np.testing.assert_array_equal(
                getattr(store.load(run_key(short_spec)), name),
                getattr(fresh_rt, name),
                err_msg=name,
            )
        assert len(served.completed_jobs()) == len(fresh_rt.completed_jobs())

    def test_executor_serves_prefix_and_reports_it(self, tmp_path):
        store = ResultStore(tmp_path)
        runner = CountingRunner()
        long_campaign = tiny_campaign(policies=("Default",),
                                      durations_s=(4.0,))
        executor = CampaignExecutor(store=store, backend="serial",
                                    runner=runner)
        executor.run_campaign(long_campaign)
        assert runner.run_calls == 1

        events = []
        short_campaign = tiny_campaign(policies=("Default",),
                                       durations_s=(2.0,))
        executor2 = CampaignExecutor(
            store=store, backend="serial", runner=runner,
            progress=lambda e, k, d: events.append(e),
        )
        run = executor2.run_campaign(short_campaign)
        assert run.counts() == {"prefix": 1}
        assert events == ["prefix"]
        assert runner.run_calls == 1  # nothing was simulated
        # The truncation was persisted under the exact key: the next
        # invocation is a plain cache hit.
        assert executor2.run_campaign(short_campaign).counts() == {
            "cached": 1
        }

    def test_prefix_cache_can_be_disabled(self, tmp_path):
        store = ResultStore(tmp_path)
        runner = CountingRunner()
        executor = CampaignExecutor(store=store, backend="serial",
                                    runner=runner, prefix_cache=False)
        executor.run_campaign(tiny_campaign(policies=("Default",),
                                            durations_s=(4.0,)))
        run = executor.run_campaign(tiny_campaign(policies=("Default",),
                                                  durations_s=(2.0,)))
        assert run.counts() == {"ok": 1}
        assert runner.run_calls == 2

    def test_run_specs_round_trips_served_prefix(self, tmp_path):
        store = ResultStore(tmp_path)
        runner = ExperimentRunner()
        long_spec = tiny_spec(duration_s=4.0)
        store.save(long_spec, runner.run(long_spec))
        short_spec = tiny_spec(duration_s=2.0)
        executor = CampaignExecutor(store=store, backend="serial",
                                    runner=CountingRunner())
        results = executor.run_specs([short_spec])
        assert results[run_key(short_spec)].n_ticks == 20

    def test_equal_duration_serves_as_degenerate_prefix(self, tmp_path):
        """A stored run of exactly the requested duration is a valid
        prefix source — the truncation is a no-op and the served series
        equal the stored ones tick for tick."""
        store = ResultStore(tmp_path)
        runner = ExperimentRunner()
        spec = tiny_spec(duration_s=2.0)
        key = store.save(spec, runner.run(spec))
        assert store.find_prefix(spec) == key
        served = store.serve_prefix(spec)
        assert served is not None
        assert served.n_ticks == 20
        stored = store.load(key)
        np.testing.assert_array_equal(served.unit_temps_k,
                                      stored.unit_temps_k)
        np.testing.assert_array_equal(served.times, stored.times)
        assert served.energy_j == stored.energy_j

    def test_shorter_stored_run_never_serves_longer_request(self, tmp_path):
        """A stored 2 s run must not serve a 4 s request — prefixes only
        truncate, never extrapolate — so the executor simulates."""
        store = ResultStore(tmp_path)
        runner = CountingRunner()
        short_spec = tiny_spec(duration_s=2.0)
        store.save(short_spec, ExperimentRunner().run(short_spec))
        long_spec = tiny_spec(duration_s=4.0)
        assert store.find_prefix(long_spec) is None
        assert store.serve_prefix(long_spec) is None
        executor = CampaignExecutor(store=store, backend="serial",
                                    runner=runner)
        run = executor.run_campaign(tiny_campaign(policies=("Default",),
                                                  durations_s=(4.0,)))
        assert run.counts() == {"ok": 1}
        assert runner.run_calls == 1

    def test_old_version_entries_never_serve(self, tmp_path):
        """Entries saved before a KEY_VERSION bump must not serve
        prefixes — the bump invalidated their semantics."""
        store = ResultStore(tmp_path)
        runner = ExperimentRunner()
        long_spec = tiny_spec(duration_s=4.0)
        key = store.save(long_spec, runner.run(long_spec))
        store._index[key].pop("v")
        store._flush_index()
        reopened = ResultStore(tmp_path)
        assert reopened.find_prefix(tiny_spec(duration_s=2.0)) is None

    def test_truncate_result_validation(self):
        from repro.analysis.result_io import truncate_result

        result = ExperimentRunner().run(tiny_spec(duration_s=2.0))
        with pytest.raises(ConfigurationError):
            truncate_result(result, 4.0)  # cannot extend
        with pytest.raises(ConfigurationError):
            truncate_result(result, 0.01)  # sub-tick
        assert truncate_result(result, 2.0) is result
        half = truncate_result(result, 1.0)
        assert half.n_ticks == 10
        np.testing.assert_array_equal(half.unit_temps_k,
                                      result.unit_temps_k[:10])


class TestBatchedBackendUnits:
    """In-process tests of the batched backend's packing logic."""

    def test_units_pack_compatible_runs(self):
        executor = CampaignExecutor(backend="batched", batch_size=2)
        pending = [
            ("k0", tiny_spec(seed=1)),
            ("k1", tiny_spec(seed=2)),
            ("k2", tiny_spec(seed=3)),
            ("k3", tiny_spec(seed=4, duration_s=4.0)),
        ]
        units = executor._make_units(pending)
        assert [[key for key, _ in unit] for unit in units] == [
            ["k0", "k1"], ["k2"], ["k3"],
        ]

    def test_parallel_backend_keeps_singleton_units(self):
        executor = CampaignExecutor(backend="parallel")
        pending = [("k0", tiny_spec(seed=1)), ("k1", tiny_spec(seed=2))]
        assert [len(u) for u in executor._make_units(pending)] == [1, 1]

    def test_invalid_batch_options_rejected(self):
        with pytest.raises(ConfigurationError):
            CampaignExecutor(backend="batched", batch_size=0)
        with pytest.raises(ConfigurationError):
            CampaignExecutor(backend="batched", propagation="bogus")


@pytest.mark.slow
class TestBatchedExecutor:
    def test_batched_matches_serial_store(self, tmp_path):
        campaign = tiny_campaign(seeds=(1, 2))
        serial_store = ResultStore(tmp_path / "serial")
        batched_store = ResultStore(tmp_path / "batched")
        CampaignExecutor(store=serial_store, backend="serial").run_campaign(
            campaign
        )
        run = CampaignExecutor(
            store=batched_store, backend="batched", max_workers=2,
            batch_size=4,
        ).run_campaign(campaign)
        assert run.counts() == {"ok": 4}
        for key in campaign.keys():
            a = serial_store.load(key)
            b = batched_store.load(key)
            np.testing.assert_array_equal(a.unit_temps_k, b.unit_temps_k)
            np.testing.assert_array_equal(a.vf_indices, b.vf_indices)
            assert a.energy_j == b.energy_j

    def test_poisoned_batch_isolates_failure(self, tmp_path):
        """A bad spec fails alone: its batch mates are retried
        individually and complete."""
        bad = tiny_spec(seed=5, benchmark_mix=(("not-a-benchmark", 4),))
        campaign = tiny_campaign(policies=("Default",), seeds=(1, 2),
                                 extra_runs=(bad,))
        store = ResultStore(tmp_path)
        run = CampaignExecutor(
            store=store, backend="batched", max_workers=2, batch_size=8,
        ).run_campaign(campaign)
        assert run.counts() == {"ok": 2, "error": 1}
        assert "not-a-benchmark" in store.failures()[run_key(bad)]

    def test_batched_resume(self, tmp_path):
        campaign = tiny_campaign(seeds=(1, 2, 3))
        store = ResultStore(tmp_path)
        executor = CampaignExecutor(store=store, backend="batched",
                                    max_workers=2)
        assert executor.run_campaign(campaign).counts() == {"ok": 6}
        assert executor.run_campaign(campaign).counts() == {"cached": 6}
