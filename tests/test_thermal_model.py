"""ThermalModel facade tests."""

import pytest

from repro.errors import ThermalModelError
from repro.floorplan.experiments import build_experiment
from repro.thermal.materials import celsius
from repro.thermal.model import ThermalModel


@pytest.fixture(scope="module")
def model():
    return ThermalModel(build_experiment(1), nrows=6, ncols=6)


def uniform_powers(model, core_w=3.0, other_w=1.0):
    return {
        name: core_w if model.unit_kind(name).value == "core" else other_w
        for name in model.unit_names
    }


class TestIntrospection:
    def test_unit_names_cover_both_dies(self, model):
        names = model.unit_names
        assert any(n.startswith("L0_") for n in names)
        assert any(n.startswith("L1_") for n in names)

    def test_core_names_canonical_order(self, model):
        assert model.core_names == [f"L0_core{i}" for i in range(8)]

    def test_unit_area_lookup(self, model):
        assert model.unit_area("L0_core0") == pytest.approx(10e-6)

    def test_unknown_unit_raises(self, model):
        with pytest.raises(ThermalModelError):
            model.unit_area("nope")


class TestSteadyState:
    def test_cores_hotter_than_same_layer_service_strip(self, model):
        # Compare within EXP-1's logic tier: 0.3 W/mm² cores vs the
        # ~0.06 W/mm² crossbar at equal distance from the sink (the
        # upper tier is near-uniform, so it doesn't skew the contrast).
        steady = model.steady_state(uniform_powers(model))
        core_mean = sum(steady[f"L0_core{i}"] for i in range(8)) / 8
        assert core_mean > steady["L0_xbar"]

    def test_plausible_operating_point(self, model):
        steady = model.steady_state(uniform_powers(model))
        hottest = celsius(max(steady.values()))
        assert 50.0 < hottest < 90.0

    def test_node_power_conservation(self, model):
        powers = uniform_powers(model)
        vec = model.node_powers(powers)
        assert vec.sum() == pytest.approx(sum(powers.values()))


class TestTransient:
    def test_step_moves_toward_steady_state(self):
        model = ThermalModel(build_experiment(1), nrows=6, ncols=6)
        powers = uniform_powers(model)
        model.reset()
        before = model.max_temperature()
        for _ in range(20):
            model.step(powers)
        assert model.max_temperature() > before

    def test_initialize_steady_state(self):
        model = ThermalModel(build_experiment(1), nrows=6, ncols=6)
        powers = uniform_powers(model)
        model.initialize_steady_state(powers)
        steady = model.steady_state(powers)
        for name, temp in model.unit_temperatures().items():
            assert temp == pytest.approx(steady[name], abs=1e-6)

    def test_reset(self):
        model = ThermalModel(build_experiment(1), nrows=6, ncols=6)
        model.initialize_steady_state(uniform_powers(model))
        model.reset(300.0)
        temps = model.unit_temperatures()
        assert all(t == pytest.approx(300.0) for t in temps.values())


class TestReadback:
    def test_max_at_least_mean(self, model):
        model.initialize_steady_state(uniform_powers(model))
        means = model.unit_temperatures()
        maxes = model.unit_max_temperatures()
        for name in model.unit_names:
            assert maxes[name] >= means[name] - 1e-9

    def test_layer_spread_non_negative(self, model):
        spreads = model.layer_unit_spread()
        assert len(spreads) == 2
        assert all(s >= 0.0 for s in spreads)

    def test_vertical_gradients_small(self, model):
        """§V-C: vertical gradients between adjacent layers stay within
        a few degrees thanks to the thin conductive interlayer."""
        model_local = ThermalModel(build_experiment(1), nrows=6, ncols=6)
        model_local.initialize_steady_state(uniform_powers(model_local))
        grads = model_local.vertical_gradients()
        assert len(grads) == 1
        assert grads[0] < 5.0

    def test_core_temperatures_subset_of_units(self, model):
        core_temps = model.core_temperatures()
        unit_temps = model.unit_temperatures()
        for name, temp in core_temps.items():
            assert temp == pytest.approx(unit_temps[name])


class TestAssemblySharing:
    def test_shared_assembly_reproduces_results(self, model):
        import numpy as np

        fresh = ThermalModel(build_experiment(1), nrows=6, ncols=6)
        shared = ThermalModel(
            build_experiment(1), nrows=6, ncols=6, assembly=model.assembly
        )
        assert shared.assembly is model.assembly
        donor_state = model.temperatures.copy()
        powers = uniform_powers(model)
        fresh.step(powers)
        shared.step(powers)
        np.testing.assert_array_equal(
            fresh.unit_temperature_vector(), shared.unit_temperature_vector()
        )
        # State is per-instance: stepping the borrower leaves the donor
        # model untouched.
        np.testing.assert_array_equal(model.temperatures, donor_state)

    def test_mismatched_assembly_grid_rejected(self, model):
        with pytest.raises(ThermalModelError):
            ThermalModel(
                build_experiment(1), nrows=8, ncols=8, assembly=model.assembly
            )

    def test_conflicting_stack_and_assembly_rejected(self, model):
        from repro.thermal.stack import build_stack

        with pytest.raises(ThermalModelError):
            ThermalModel(
                build_experiment(1),
                nrows=6,
                ncols=6,
                stack=build_stack(build_experiment(1)),
                assembly=model.assembly,
            )


class TestFourTier:
    def test_upper_die_hotter_than_lower(self):
        model = ThermalModel(build_experiment(3), nrows=6, ncols=6)
        powers = {
            name: 3.0 if model.unit_kind(name).value == "core" else 1.0
            for name in model.unit_names
        }
        steady = model.steady_state(powers)
        lower_cores = [steady[f"L0_core{i}"] for i in range(8)]
        upper_cores = [steady[f"L2_core{i}"] for i in range(8)]
        assert sum(upper_cores) > sum(lower_cores)

    def test_more_layers_run_hotter(self):
        temps = {}
        for exp in (1, 3):
            model = ThermalModel(build_experiment(exp), nrows=6, ncols=6)
            powers = {
                name: 3.0 if model.unit_kind(name).value == "core" else 1.0
                for name in model.unit_names
            }
            steady = model.steady_state(powers)
            temps[exp] = max(steady.values())
        assert temps[3] > temps[1]
