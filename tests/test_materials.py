"""Material constants and unit helper tests."""

import pytest

from repro.thermal.materials import (
    AMBIENT_K,
    COPPER,
    INTERLAYER,
    SILICON,
    Material,
    celsius,
    kelvin,
)


class TestUnits:
    def test_round_trip(self):
        assert celsius(kelvin(85.0)) == pytest.approx(85.0)

    def test_ambient_is_45c(self):
        assert celsius(AMBIENT_K) == pytest.approx(45.0)


class TestMaterials:
    def test_interlayer_resistivity_matches_table2(self):
        assert INTERLAYER.resistivity == pytest.approx(0.25)

    def test_copper_conducts_better_than_silicon(self):
        assert COPPER.conductivity > SILICON.conductivity

    def test_resistivity_is_inverse_conductivity(self):
        assert SILICON.resistivity == pytest.approx(1.0 / SILICON.conductivity)

    def test_with_resistivity(self):
        adjusted = INTERLAYER.with_resistivity(0.23)
        assert adjusted.conductivity == pytest.approx(1.0 / 0.23)
        assert adjusted.volumetric_heat_capacity == INTERLAYER.volumetric_heat_capacity

    def test_rejects_non_positive_conductivity(self):
        with pytest.raises(ValueError):
            Material("bad", conductivity=0.0, volumetric_heat_capacity=1.0)

    def test_rejects_non_positive_capacity(self):
        with pytest.raises(ValueError):
            Material("bad", conductivity=1.0, volumetric_heat_capacity=-1.0)
