"""Performance / energy / reliability metric tests."""

import math

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.metrics.energy import average_power, total_energy
from repro.metrics.performance import (
    latency_summary,
    mean_response_time,
    normalized_delay,
    percentile,
    response_time_percentiles,
    throughput,
)
from repro.metrics.reliability import (
    coffin_manson_acceleration,
    electromigration_acceleration,
    thermal_cycling_damage,
)
from repro.workload.benchmarks import benchmark
from repro.workload.job import Job


def finished_job(job_id, arrival, work, completion):
    job = Job(job_id, 0, benchmark("gcc"), arrival, work)
    job.completion_time = completion
    return job


class TestPerformance:
    def test_mean_response(self):
        jobs = [finished_job(1, 0.0, 1.0, 2.0), finished_job(2, 1.0, 1.0, 2.0)]
        assert mean_response_time(jobs) == pytest.approx(1.5)

    def test_unfinished_jobs_ignored(self):
        jobs = [finished_job(1, 0.0, 1.0, 2.0), Job(2, 0, benchmark("gcc"), 0.0, 1.0)]
        assert mean_response_time(jobs) == pytest.approx(2.0)

    def test_no_finished_jobs_raises(self):
        with pytest.raises(ConfigurationError):
            mean_response_time([Job(1, 0, benchmark("gcc"), 0.0, 1.0)])

    def test_normalized_delay(self):
        baseline = [finished_job(1, 0.0, 1.0, 1.0)]
        slower = [finished_job(2, 0.0, 1.0, 1.5)]
        assert normalized_delay(slower, baseline) == pytest.approx(1.5)

    def test_throughput(self):
        jobs = [finished_job(i, 0.0, 1.0, 2.0) for i in range(10)]
        assert throughput(jobs, 5.0) == pytest.approx(2.0)

    def test_throughput_bad_duration(self):
        with pytest.raises(ConfigurationError):
            throughput([], 0.0)


class TestPercentiles:
    def test_exact_linear_interpolation(self):
        values = [1.0, 2.0, 3.0, 4.0]
        # rank = q/100 * (n-1); p50 lands halfway between 2 and 3.
        assert percentile(values, 50.0) == pytest.approx(2.5)
        assert percentile(values, 0.0) == pytest.approx(1.0)
        assert percentile(values, 100.0) == pytest.approx(4.0)
        assert percentile(values, 25.0) == pytest.approx(1.75)

    def test_order_independent(self):
        assert percentile([3.0, 1.0, 2.0], 50.0) == pytest.approx(2.0)

    def test_matches_numpy_linear(self):
        rng = np.random.default_rng(7)
        values = rng.exponential(1.0, size=101).tolist()
        for q in (50.0, 95.0, 99.0):
            assert percentile(values, q) == pytest.approx(
                float(np.percentile(values, q))
            )

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            percentile([], 50.0)
        with pytest.raises(ConfigurationError):
            percentile([1.0], -1.0)
        with pytest.raises(ConfigurationError):
            percentile([1.0], 100.5)

    def test_latency_summary_keys(self):
        summary = latency_summary([0.1, 0.2, 0.3])
        assert summary["count"] == 3
        assert summary["mean"] == pytest.approx(0.2)
        assert summary["max"] == pytest.approx(0.3)
        assert set(summary) == {"count", "mean", "max", "p50", "p95", "p99"}
        assert summary["p50"] == pytest.approx(0.2)

    def test_latency_summary_empty_is_zeroed(self):
        summary = latency_summary([])
        assert summary["count"] == 0
        assert summary["mean"] == 0.0
        assert summary["p99"] == 0.0

    def test_latency_summary_fractional_percentile_key(self):
        summary = latency_summary([1.0, 2.0], percentiles=(99.9,))
        assert "p99_9" in summary

    def test_response_time_percentiles(self):
        jobs = [finished_job(i, 0.0, 1.0, float(i + 1)) for i in range(4)]
        jobs.append(Job(99, 0, benchmark("gcc"), 0.0, 1.0))  # unfinished
        pcts = response_time_percentiles(jobs)
        assert pcts["p50"] == pytest.approx(2.5)

    def test_response_time_percentiles_no_finished_raises(self):
        with pytest.raises(ConfigurationError):
            response_time_percentiles(
                [Job(1, 0, benchmark("gcc"), 0.0, 1.0)]
            )


class TestEnergy:
    def test_total_energy(self):
        assert total_energy(np.array([10.0, 20.0]), 0.5) == pytest.approx(15.0)

    def test_average_power(self):
        assert average_power(np.array([10.0, 20.0])) == pytest.approx(15.0)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            total_energy(np.array([]), 0.1)
        with pytest.raises(ConfigurationError):
            total_energy(np.array([1.0]), 0.0)
        with pytest.raises(ConfigurationError):
            average_power(np.zeros((2, 2)))


class TestReliability:
    def test_paper_16x_factor(self):
        """JEP122C: 16x more failures when ΔT goes from 10 to 20 C."""
        assert coffin_manson_acceleration(20.0, 10.0) == pytest.approx(16.0)

    def test_identity_at_reference(self):
        assert coffin_manson_acceleration(10.0, 10.0) == pytest.approx(1.0)

    def test_rejects_non_positive(self):
        with pytest.raises(ConfigurationError):
            coffin_manson_acceleration(0.0)

    def test_em_acceleration_increases_with_temperature(self):
        a = electromigration_acceleration(360.0, 350.0)
        b = electromigration_acceleration(380.0, 350.0)
        assert 1.0 < a < b

    def test_em_identity(self):
        assert electromigration_acceleration(350.0, 350.0) == pytest.approx(1.0)

    def test_em_black_equation_form(self):
        value = electromigration_acceleration(370.0, 350.0, 0.7)
        expected = math.exp((0.7 / 8.617333262e-5) * (1 / 350.0 - 1 / 370.0))
        assert value == pytest.approx(expected)

    def test_damage_accumulates(self):
        low = thermal_cycling_damage([(10.0, 1.0)] * 5)
        high = thermal_cycling_damage([(20.0, 1.0)] * 5)
        assert high == pytest.approx(16.0 * low)

    def test_damage_skips_zero_cycles(self):
        assert thermal_cycling_damage([(0.0, 1.0)]) == 0.0
