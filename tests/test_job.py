"""Job and thread model tests."""

import pytest

from repro.errors import WorkloadError
from repro.workload.benchmarks import benchmark
from repro.workload.job import Job, ThreadState, WorkloadThread


def make_job(work=1.0, arrival=0.0):
    return Job(1, 0, benchmark("gcc"), arrival, work)


class TestJob:
    def test_remaining_initialized_to_work(self):
        assert make_job(2.5).remaining_s == pytest.approx(2.5)

    def test_rejects_non_positive_work(self):
        with pytest.raises(WorkloadError):
            make_job(0.0)

    def test_rejects_negative_arrival(self):
        with pytest.raises(WorkloadError):
            make_job(1.0, -1.0)

    def test_response_time(self):
        job = make_job(1.0, arrival=2.0)
        job.completion_time = 5.5
        assert job.response_time == pytest.approx(3.5)
        assert job.delay == pytest.approx(2.5)

    def test_response_before_completion_raises(self):
        with pytest.raises(WorkloadError):
            make_job().response_time

    def test_finished_flag(self):
        job = make_job()
        assert not job.finished
        job.completion_time = 1.0
        assert job.finished


class TestThread:
    def test_initial_state(self):
        thread = WorkloadThread(0, benchmark("gzip"))
        assert thread.state is ThreadState.THINKING
        assert thread.last_core is None
        assert thread.jobs_issued == 0
