"""EXP-1..4 configuration tests (paper Figure 1)."""

import pytest

from repro.errors import ConfigurationError
from repro.floorplan.experiments import (
    EXPERIMENT_IDS,
    build_experiment,
)
from repro.floorplan.unit import UnitKind


class TestTopology:
    @pytest.mark.parametrize("exp_id,n_layers,n_cores", [
        (1, 2, 8), (2, 2, 8), (3, 4, 16), (4, 4, 16),
    ])
    def test_layer_and_core_counts(self, exp_id, n_layers, n_cores):
        config = build_experiment(exp_id)
        assert config.n_layers == n_layers
        assert config.n_cores == n_cores

    def test_exp1_separates_cores_and_caches(self):
        config = build_experiment(1)
        assert len(config.layers[0].cores()) == 8
        assert config.layers[1].cores() == []
        assert len(config.layers[1].units_of_kind(UnitKind.CACHE)) == 4

    def test_exp2_mixes_every_layer(self):
        config = build_experiment(2)
        for plan in config.layers:
            assert len(plan.cores()) == 4
            assert len(plan.units_of_kind(UnitKind.CACHE)) == 2

    def test_exp3_alternates_core_and_cache_layers(self):
        config = build_experiment(3)
        core_counts = [len(plan.cores()) for plan in config.layers]
        assert core_counts == [8, 0, 8, 0]

    def test_exp4_mirrors_alternate_layers(self):
        config = build_experiment(4)
        # Cores of adjacent tiers must not overlap vertically.
        lower = config.layers[0].cores()
        upper = config.layers[1].cores()
        for a in lower:
            for b in upper:
                assert a.overlap_area(b) == pytest.approx(0.0)

    def test_unknown_id_rejected(self):
        with pytest.raises(ConfigurationError):
            build_experiment(5)

    def test_experiment_ids_constant(self):
        assert EXPERIMENT_IDS == (1, 2, 3, 4)


class TestMappings:
    def test_core_names_unique_and_ordered(self):
        for exp_id in EXPERIMENT_IDS:
            names = build_experiment(exp_id).core_names()
            assert len(names) == len(set(names))

    def test_core_layer_map_covers_all_cores(self):
        config = build_experiment(3)
        mapping = config.core_layer_map()
        assert set(mapping) == set(config.core_names())
        assert set(mapping.values()) == {0, 2}

    def test_unit_layer_map_covers_all_units(self):
        config = build_experiment(2)
        mapping = config.unit_layer_map()
        total_units = sum(len(plan) for plan in config.layers)
        assert len(mapping) == total_units

    def test_caches_per_layer(self):
        assert build_experiment(3).caches_per_layer() == [0, 4, 0, 4]

    def test_table2_parameters(self):
        config = build_experiment(1)
        assert config.die_thickness_m == pytest.approx(0.15e-3)
        assert config.interlayer_thickness_m == pytest.approx(0.02e-3)
        assert config.convection_resistance == pytest.approx(0.1)
        assert config.convection_capacitance == pytest.approx(140.0)
