"""Integration tests: the paper's qualitative policy results (§V).

Each test asserts one claim from the evaluation section on a shortened
run. These are the guardrails for the figure benches.
"""

import pytest

from repro.analysis.runner import ExperimentRunner, RunSpec
from repro.metrics.performance import normalized_delay
from repro.metrics.report import summarize

RUNNER = ExperimentRunner()
DURATION = 90.0


def run(policy, exp_id=4, dpm=False, seed=2009):
    return RUNNER.run(
        RunSpec(exp_id=exp_id, policy=policy, duration_s=DURATION,
                with_dpm=dpm, seed=seed)
    )


@pytest.fixture(scope="module")
def exp4():
    names = ["Default", "CGate", "DVFS_TT", "DVFS_Util", "DVFS_FLP",
             "Migr", "Adapt3D", "Adapt3D&DVFS_TT"]
    return {name: run(name) for name in names}


@pytest.fixture(scope="module")
def exp4_dpm():
    names = ["Default", "DVFS_TT", "AdaptRand", "Adapt3D", "Adapt3D&DVFS_TT"]
    return {name: run(name, dpm=True) for name in names}


class TestHotSpots:
    def test_default_is_worst(self, exp4):
        base = summarize(exp4["Default"]).hot_spot_pct
        for name, result in exp4.items():
            if name == "Default":
                continue
            assert summarize(result).hot_spot_pct <= base + 1.0

    def test_dvfs_reduces_hot_spots(self, exp4):
        base = summarize(exp4["Default"]).hot_spot_pct
        for name in ("DVFS_TT", "DVFS_Util", "DVFS_FLP"):
            assert summarize(exp4[name]).hot_spot_pct < base

    def test_cgate_reduces_hot_spots(self, exp4):
        assert (
            summarize(exp4["CGate"]).hot_spot_pct
            < summarize(exp4["Default"]).hot_spot_pct
        )

    def test_hybrid_beats_plain_dvfs(self, exp4_dpm):
        """§V-B: combining Adapt3D with DVFS achieves a 20-40% reduction
        in hot spots compared to DVFS alone on the 4-tier systems
        (evaluated with DPM, the paper's Figure 4 configuration)."""
        dvfs = summarize(exp4_dpm["DVFS_TT"]).hot_spot_pct
        hybrid = summarize(exp4_dpm["Adapt3D&DVFS_TT"]).hot_spot_pct
        assert hybrid < dvfs

    def test_adaptive_beats_default_with_dpm(self, exp4_dpm):
        base = summarize(exp4_dpm["Default"]).hot_spot_pct
        adaptive = summarize(exp4_dpm["Adapt3D"]).hot_spot_pct
        assert adaptive < base


class TestPerformance:
    def test_adaptive_allocation_negligible_overhead(self, exp4):
        """§V-A: Adapt3D updates probabilities only — the performance
        cost relative to Default stays within a few percent."""
        delay = normalized_delay(
            exp4["Adapt3D"].jobs, exp4["Default"].jobs
        )
        assert delay < 1.08

    def test_throttling_policies_pay_more_than_adaptive(self, exp4):
        adapt = normalized_delay(exp4["Adapt3D"].jobs, exp4["Default"].jobs)
        cgate = normalized_delay(exp4["CGate"].jobs, exp4["Default"].jobs)
        migr = normalized_delay(exp4["Migr"].jobs, exp4["Default"].jobs)
        assert cgate > adapt
        assert migr > adapt

    def test_hybrid_cheaper_than_gating(self, exp4):
        hybrid = normalized_delay(
            exp4["Adapt3D&DVFS_TT"].jobs, exp4["Default"].jobs
        )
        cgate = normalized_delay(exp4["CGate"].jobs, exp4["Default"].jobs)
        assert hybrid < cgate


class TestGradients:
    def test_adaptive_policies_cut_gradients_with_dpm(self, exp4_dpm):
        """§V-C: adaptive scheduling policies, which balance the
        temperature, outperform the others by large in reducing
        gradients."""
        base = summarize(exp4_dpm["Default"]).gradient_pct
        adaptive = summarize(exp4_dpm["Adapt3D"]).gradient_pct
        assert base > 5.0
        assert adaptive < base / 2.0


class TestVerticalGradients:
    def test_interlayer_gradients_stay_small(self):
        """§V-C: vertical gradients between adjacent layers are limited
        to a few degrees."""
        engine = RUNNER.build_engine(
            RunSpec(exp_id=3, policy="Default", duration_s=10.0)
        )
        engine.run()
        grads = engine.thermal.vertical_gradients()
        assert max(grads) < 8.0


class TestEnergy:
    def test_dvfs_saves_energy_on_hot_stack(self, exp4):
        assert exp4["DVFS_TT"].energy_j < exp4["Default"].energy_j

    def test_hybrid_saves_energy_too(self, exp4):
        assert exp4["Adapt3D&DVFS_TT"].energy_j < exp4["Default"].energy_j
