"""Event-fidelity differential harness and event-primitive unit tests.

The event engine (``EngineConfig(fidelity="event")``) advances the
clock between heap events: every stretch of whole ticks provably free
of scheduler events is crossed by one :meth:`_fast_forward_event` call
over the run-persistent reduced-order modal thermal stepper — no
settledness gate, no horizon cap. The contract mirrors span's, with
a third column in the differential:

- the discrete planes (V/f indices, core states) and the job stream
  are identical to eager,
- recorded thermal planes within ``EVENT_TOL_K`` (1e-3 K),
- energy within ``EVENT_TOL_ENERGY`` (0.1%).

A smoke slice runs in tier-1 (``TestEventDifferentialFast``); the full
stack x policy x DPM matrix runs under the ``slow`` marker.
"""

import heapq
from dataclasses import replace

import numpy as np
import pytest

from repro.analysis.runner import ExperimentRunner, RunSpec
from repro.errors import SchedulerError
from repro.floorplan.experiments import build_experiment
from repro.sched.engine import SimulationEngine
from repro.thermal.model import (
    MODAL_BASIS_ERR_MAX,
    ThermalModel,
)

RUNNER = ExperimentRunner()

EVENT_TOL_K = 1e-3
EVENT_TOL_ENERGY = 1e-3

THERMAL_ARRAYS = (
    "unit_temps_k",
    "core_temps_k",
    "core_peak_temps_k",
    "layer_spreads_k",
)

DISCRETE_ARRAYS = ("vf_indices", "core_states")

#: Two long-running threads leave multi-tick event-free stretches once
#: the stack settles — steady clock jumps without DPM churn.
QUIET_MIX = (("gcc", 2),)

#: ~2% mean utilization: the workload shape the event loop targets —
#: long idle gaps between sparse arrivals, most ticks jumped.
IDLE_MIX = (("gzip", 1), ("MPlayer", 1))


def run_fidelity(spec, fidelity, **config_overrides):
    engine = RUNNER.build_engine(spec)
    engine.config = replace(
        engine.config, fidelity=fidelity, **config_overrides
    )
    return engine.run()


def assert_event_close(eager, event):
    """Assert the documented event-vs-eager agreement contract."""
    np.testing.assert_array_equal(eager.times, event.times)
    for name in DISCRETE_ARRAYS:
        np.testing.assert_array_equal(
            getattr(eager, name), getattr(event, name), err_msg=name
        )
    for name in THERMAL_ARRAYS:
        np.testing.assert_allclose(
            getattr(eager, name), getattr(event, name),
            rtol=0.0, atol=EVENT_TOL_K, err_msg=name,
        )
    np.testing.assert_allclose(
        eager.utilization, event.utilization, rtol=0.0, atol=1e-9
    )
    assert abs(eager.energy_j - event.energy_j) <= (
        EVENT_TOL_ENERGY * eager.energy_j
    )
    assert eager.migrations == event.migrations
    assert len(eager.completed_jobs()) == len(event.completed_jobs())
    for je, js in zip(eager.jobs, event.jobs):
        assert je.core == js.core
        if je.finished and js.finished:
            assert abs(je.completion_time - js.completion_time) <= 1e-6


def count_event_jumps(monkeypatch):
    """Patch the event fast-forward to count jumps/ticks it consumes."""
    calls = {"jumps": 0, "ticks": 0, "lengths": []}
    original = SimulationEngine._fast_forward_event

    def wrapper(self, rec, tick, dt, quiet, powers_buf, unit_row):
        result = original(self, rec, tick, dt, quiet, powers_buf, unit_row)
        if result[0]:
            calls["jumps"] += 1
            calls["ticks"] += result[0]
            calls["lengths"].append(result[0])
        return result

    monkeypatch.setattr(SimulationEngine, "_fast_forward_event", wrapper)
    return calls


class TestEventDifferentialFast:
    """Tier-1 smoke slice of the three-column fidelity differential."""

    @pytest.mark.parametrize("exp_id", [1, 4])
    @pytest.mark.parametrize("policy", ["Default", "Adapt3D"])
    def test_event_matches_eager(self, exp_id, policy):
        spec = RunSpec(exp_id=exp_id, policy=policy, duration_s=6.0, seed=3)
        assert_event_close(
            run_fidelity(spec, "eager"), run_fidelity(spec, "event")
        )

    def test_three_fidelity_columns_agree(self):
        """Eager, span and event on one spec: span and event both hold
        the tolerance against eager, and their discrete planes are all
        identical — the fidelity ladder, one rung per column."""
        spec = RunSpec(exp_id=2, policy="Default", duration_s=10.0, seed=5,
                       benchmark_mix=QUIET_MIX)
        eager = run_fidelity(spec, "eager")
        span = run_fidelity(spec, "span")
        event = run_fidelity(spec, "event")
        assert_event_close(eager, span)
        assert_event_close(eager, event)
        for name in DISCRETE_ARRAYS:
            np.testing.assert_array_equal(
                getattr(span, name), getattr(event, name), err_msg=name
            )

    def test_event_matches_eager_with_dpm(self):
        spec = RunSpec(exp_id=1, policy="Migr", duration_s=6.0,
                       with_dpm=True, seed=3)
        assert_event_close(
            run_fidelity(spec, "eager"), run_fidelity(spec, "event")
        )

    def test_event_matches_eager_with_sensor_noise(self):
        """Noisy sensors force per-tick reads (no control-skip prefix),
        keeping the RNG streams aligned across fidelities."""
        spec = RunSpec(exp_id=4, policy="Adapt3D", duration_s=6.0, seed=3,
                       sensor_noise_sigma=1.0)
        assert_event_close(
            run_fidelity(spec, "eager"), run_fidelity(spec, "event")
        )

    def test_event_matches_eager_dvfs(self):
        spec = RunSpec(exp_id=2, policy="Adapt3D&DVFS_TT", duration_s=6.0,
                       with_dpm=True, seed=3)
        assert_event_close(
            run_fidelity(spec, "eager"), run_fidelity(spec, "event")
        )

    def test_idle_heavy_with_dpm(self, monkeypatch):
        """The target scenario: sparse arrivals, sleeping cores, clock
        jumps covering most of the run."""
        calls = count_event_jumps(monkeypatch)
        spec = RunSpec(exp_id=4, policy="Default", duration_s=12.0, seed=7,
                       with_dpm=True, benchmark_mix=IDLE_MIX)
        eager = run_fidelity(spec, "eager")
        event = run_fidelity(spec, "event")
        assert calls["jumps"] > 0
        assert calls["ticks"] > eager.n_ticks // 2  # most ticks jumped
        assert_event_close(eager, event)


class TestEventJump:
    """The clock jump: triggers, no horizon cap, dense fallback."""

    def test_quiet_workload_jumps(self, monkeypatch):
        calls = count_event_jumps(monkeypatch)
        spec = RunSpec(exp_id=2, policy="Default", duration_s=30.0, seed=5,
                       benchmark_mix=QUIET_MIX)
        eager = run_fidelity(spec, "eager")
        event = run_fidelity(spec, "event")
        assert calls["jumps"] > 0
        assert calls["ticks"] >= 2 * calls["jumps"]
        assert_event_close(eager, event)

    def test_no_horizon_cap(self, monkeypatch):
        """span_horizon_ticks caps span fast-forwards, never event
        jumps: a jump runs to the next heap event however far."""
        calls = count_event_jumps(monkeypatch)
        spec = RunSpec(exp_id=2, policy="Default", duration_s=30.0, seed=5,
                       benchmark_mix=QUIET_MIX)
        run_fidelity(spec, "event", span_horizon_ticks=3)
        assert calls["lengths"] and max(calls["lengths"]) > 3

    def test_no_settle_gate(self, monkeypatch):
        """Unsettled transients don't block jumps (span's settle gate
        is not consulted): the dense-event EXP-4 startup still jumps
        wherever the heap allows."""
        calls = count_event_jumps(monkeypatch)
        spec = RunSpec(exp_id=2, policy="Default", duration_s=30.0, seed=5,
                       benchmark_mix=QUIET_MIX)
        eager = run_fidelity(spec, "eager")
        event = run_fidelity(spec, "event", span_settle_k=0.0)
        assert calls["jumps"] > 0
        assert_event_close(eager, event)

    def test_implicit_solver_dense_fallback(self, monkeypatch):
        """No exponential propagator -> no modal basis; every tick of
        the jump steps the dense solver, same contract."""
        calls = count_event_jumps(monkeypatch)
        spec = RunSpec(exp_id=1, policy="Default", duration_s=10.0, seed=5,
                       benchmark_mix=QUIET_MIX,
                       thermal_solver="backward_euler")
        eager = run_fidelity(spec, "eager")
        event = run_fidelity(spec, "event")
        assert calls["jumps"] > 0
        assert_event_close(eager, event)


class TestEventOrdering:
    """Heap-order invariants of the quiet-stretch scan."""

    def _prepared_engine(self, **overrides):
        spec = RunSpec(exp_id=1, policy="Default", duration_s=6.0, seed=3,
                       fidelity="event", **overrides)
        engine = RUNNER.build_engine(spec)
        engine._prepare_run()
        return engine

    def test_jump_never_crosses_next_event(self):
        engine = self._prepared_engine()
        dt = engine.config.sampling_interval_s
        quiet = engine._quiet_ticks_event(0.0, dt, 10_000)
        horizon = None
        if engine._arrivals:
            horizon = engine._arrivals[0][0]
        if engine._event_heap:
            horizon = min(
                horizon if horizon is not None else np.inf,
                engine._event_heap[0][0],
            )
        if quiet and horizon is not None:
            assert quiet * dt <= horizon  # the jump stops short
            assert (quiet + 1) * dt > horizon - 1e-9

    def test_event_on_tick_boundary_lands_in_controlled_tick(self):
        """An event at exactly t0 + k*dt belongs to tick k, so the jump
        may cover at most k-1 ticks — the tick containing the event
        runs the full controlled pipeline."""
        engine = self._prepared_engine()
        dt = engine.config.sampling_interval_s
        engine._arrivals = [(3 * dt, 0, None)]
        engine._event_heap.clear()
        assert engine._quiet_ticks_event(0.0, dt, 10_000) == 2

    def test_stale_heap_entries_skipped(self):
        """Invalidated heap entries (stale seq) are popped, never used
        as the jump horizon."""
        engine = self._prepared_engine()
        dt = engine.config.sampling_interval_s
        baseline = engine._quiet_ticks_event(0.0, dt, 10_000)
        name = engine.core_names[0]
        stale_seq = engine._cores[name].heap_seq - 1
        heapq.heappush(engine._event_heap, (0.5 * dt, stale_seq, name))
        assert engine._quiet_ticks_event(0.0, dt, 10_000) == baseline
        if engine._event_heap:
            assert engine._event_heap[0][1] != stale_seq


class TestEventTelemetry:
    """Telemetry on the event engine: non-perturbing, counters true."""

    def test_event_unperturbed_by_telemetry(self):
        from repro.obs.telemetry import TelemetryConfig

        spec = RunSpec(exp_id=4, policy="Adapt3D", duration_s=6.0, seed=3)
        plain = run_fidelity(spec, "event")
        telem = run_fidelity(spec, "event",
                             telemetry=TelemetryConfig(trace=True))
        np.testing.assert_array_equal(plain.vf_indices, telem.vf_indices)
        np.testing.assert_array_equal(plain.core_states, telem.core_states)
        np.testing.assert_array_equal(plain.unit_temps_k, telem.unit_temps_k)
        assert plain.energy_j == telem.energy_j
        assert telem.telemetry is not None

    def test_event_jump_counters(self, monkeypatch):
        from repro.obs.telemetry import TelemetryConfig

        calls = count_event_jumps(monkeypatch)
        spec = RunSpec(exp_id=4, policy="Default", duration_s=12.0, seed=7,
                       with_dpm=True, benchmark_mix=IDLE_MIX)
        result = run_fidelity(spec, "event",
                              telemetry=TelemetryConfig())
        counters = result.telemetry["engine"]["counters"]
        assert counters["event_jumps"] == calls["jumps"] > 0
        assert counters["event_jump_ticks"] == calls["ticks"]
        assert 0 <= counters["event_skipped_ticks"] <= calls["ticks"]
        # Registry mirrors agree with the micro counters.
        reg = result.telemetry["registry"]["counters"]
        assert reg["event.jumps"] == calls["jumps"]
        assert reg["event.jump_ticks"] == calls["ticks"]
        assert reg["event.skipped_ticks"] == counters["event_skipped_ticks"]
        # Profiler credits every reconstructed tick to the jump phase.
        phases = result.telemetry["phases"]
        assert phases["ticks"] == result.n_ticks
        assert "event_jump" in phases["phases"]


class TestEventCheckpointResume:
    """Checkpoint/resume across clock jumps: the modal state is
    rematerialized at the checkpoint and re-opened on resume."""

    def _engine_run(self, spec, every=0, sink=None, resume=None):
        engine = RUNNER.build_engine(spec)
        return engine.run(checkpoint_every=every, checkpoint_sink=sink,
                          resume=resume)

    def test_resume_through_jumps(self, monkeypatch):
        calls = count_event_jumps(monkeypatch)
        spec = RunSpec(exp_id=4, policy="Default", duration_s=12.0, seed=7,
                       with_dpm=True, benchmark_mix=IDLE_MIX,
                       fidelity="event")
        clean = RUNNER.run(spec)
        assert calls["jumps"] > 0
        blobs = []
        checkpointed = self._engine_run(
            spec, every=30,
            sink=lambda blob, tick: blobs.append((tick, blob)),
        )
        # Checkpointing itself must not perturb the run: the mid-run
        # modal close rematerializes node state without invalidating
        # the reduced coordinates the loop keeps advancing.
        np.testing.assert_array_equal(clean.vf_indices,
                                      checkpointed.vf_indices)
        np.testing.assert_array_equal(clean.core_states,
                                      checkpointed.core_states)
        np.testing.assert_array_equal(clean.unit_temps_k,
                                      checkpointed.unit_temps_k)
        assert clean.energy_j == checkpointed.energy_j
        assert blobs
        for tick, blob in blobs:
            resumed = self._engine_run(spec, resume=blob)
            # Resume re-projects the checkpointed node state into a
            # fresh modal basis (a ~1e-12 K round trip), so the thermal
            # planes agree to solver precision rather than bitwise; the
            # discrete stream must be unaffected.
            for name in DISCRETE_ARRAYS:
                np.testing.assert_array_equal(
                    getattr(clean, name), getattr(resumed, name),
                    err_msg=f"resume@{tick}:{name}",
                )
            np.testing.assert_allclose(
                clean.unit_temps_k, resumed.unit_temps_k,
                rtol=0.0, atol=1e-9,
            )
            assert abs(clean.energy_j - resumed.energy_j) <= (
                1e-9 * clean.energy_j
            )


class TestEventConfigValidation:
    def test_event_requires_event_heap(self):
        engine = RUNNER.build_engine(
            RunSpec(exp_id=1, policy="Default", duration_s=2.0)
        )
        engine.config = replace(
            engine.config, fidelity="event", event_loop="legacy_scan"
        )
        with pytest.raises(SchedulerError):
            engine.run()

    def test_batch_group_key_separates_fidelities(self):
        eager = RunSpec(exp_id=1, policy="Default", duration_s=2.0)
        span = replace(eager, fidelity="span")
        event = replace(eager, fidelity="event")
        groups = ExperimentRunner.group_batchable([eager, span, event])
        assert groups == [[0], [1], [2]]

    def test_campaign_fidelity_axis_accepts_event(self):
        from repro.campaign.spec import CampaignSpec

        spec = CampaignSpec(name="ev", fidelities=("eager", "event"))
        fids = {run.fidelity for run in spec.expand()}
        assert fids == {"eager", "event"}

    def test_campaign_rejects_unknown_fidelity(self):
        from repro.campaign.spec import CampaignSpec
        from repro.errors import ConfigurationError

        with pytest.raises(ConfigurationError):
            CampaignSpec(name="bad", fidelities=("sloppy",))


class TestModalPrimitives:
    """The reduced-order modal stepper the event loop advances on."""

    @pytest.fixture(scope="class")
    def model(self):
        return ThermalModel(build_experiment(2))

    def _settled_state(self, model):
        model.initialize_steady_state(
            {name: 0.4 for name in model.unit_names}
        )

    def test_modal_basis_reconstructs_propagator(self, model):
        basis = model.assembly.modal_step_basis()
        assert basis is not None
        n_nodes = model.assembly.transient_solver(
            "exponential"
        ).propagator.shape[0]
        # Truncation drops the numerically dead modes...
        assert 0 < basis["rho"].size < n_nodes
        # ...and the realified basis is exact within the gate.
        assert basis["err"] <= MODAL_BASIS_ERR_MAX
        # Conjugate eigenpairs were realified: everything downstream
        # of the factorization must be plain float arrays.
        for key in ("rho", "V", "W"):
            assert not np.iscomplexobj(basis[key]), key

    def test_modal_jump_matches_dense_steps(self, model):
        self._settled_state(model)
        rng = np.random.default_rng(7)
        reference = ThermalModel(model.config, assembly=model.assembly)
        reference.temperatures = model.temperatures.copy()
        modal = model.modal_jump()
        assert modal is not None
        core_idx = np.array(
            [model._unit_global_index[name] for name in model._core_names]
        )
        n_units = len(model.unit_names)
        powers = rng.uniform(0.1, 2.0, n_units)
        modal.open(powers)
        for step in range(50):
            if step % 7 == 0:  # repriced steady point mid-stretch
                powers = rng.uniform(0.1, 2.0, n_units)
            reference.step_vector(powers)
            mean_row, peak_row = modal.advance(powers)
            np.testing.assert_allclose(
                mean_row, reference.unit_temperature_vector(),
                rtol=0.0, atol=1e-9,
            )
            np.testing.assert_allclose(
                peak_row[core_idx],
                reference.unit_max_vector()[core_idx],
                rtol=0.0, atol=1e-9,
            )
        modal.close()
        np.testing.assert_allclose(
            model.temperatures, reference.temperatures,
            rtol=0.0, atol=1e-9,
        )

    def test_modal_peak_row_is_core_restricted(self, model):
        """Only core units get a max readback (the per-tick consumers
        are core-indexed); non-core entries stay NaN by contract."""
        self._settled_state(model)
        modal = model.modal_jump()
        powers = np.full(len(model.unit_names), 0.5)
        modal.open(powers)
        _, peak_row = modal.advance(powers)
        core_idx = np.array(
            [model._unit_global_index[name] for name in model._core_names]
        )
        assert np.isfinite(peak_row[core_idx]).all()
        non_core = np.setdiff1d(np.arange(peak_row.size), core_idx)
        if non_core.size:
            assert np.isnan(peak_row[non_core]).all()

    def test_close_does_not_invalidate_coordinates(self, model):
        """A mid-stretch close (checkpoint) rematerializes node state;
        the caller keeps advancing the same reduced coordinates."""
        self._settled_state(model)
        reference = ThermalModel(model.config, assembly=model.assembly)
        reference.temperatures = model.temperatures.copy()
        modal = model.modal_jump()
        powers = np.full(len(model.unit_names), 0.7)
        modal.open(powers)
        for _ in range(3):
            reference.step_vector(powers)
            modal.advance(powers)
        modal.close()  # checkpoint
        np.testing.assert_allclose(
            model.temperatures, reference.temperatures,
            rtol=0.0, atol=1e-9,
        )
        for _ in range(3):
            reference.step_vector(powers)
            mean_row, _ = modal.advance(powers)
        np.testing.assert_allclose(
            mean_row, reference.unit_temperature_vector(),
            rtol=0.0, atol=1e-9,
        )

    def test_implicit_model_has_no_modal_jump(self):
        model = ThermalModel(
            build_experiment(1), solver_method="backward_euler"
        )
        assert model.modal_jump() is None


class TestQuietPowerEval:
    """The affine power decomposition the jump reprices leakage with."""

    def test_quiet_eval_matches_power_kernel(self):
        spec = RunSpec(exp_id=2, policy="Default", duration_s=2.0, seed=3,
                       fidelity="event")
        engine = RUNNER.build_engine(spec)
        engine._prepare_run()
        power = engine.power
        n_cores = len(engine.core_names)
        rng = np.random.default_rng(5)
        state = engine._state_arr.copy()
        util = rng.uniform(0.0, 1.0, n_cores)
        dyn = engine._dyn_scale_arr.copy()
        volt = engine._voltage_arr.copy()
        mem = engine._memory_intensity()
        base, leak_mul = power.quiet_power_factors(
            state, util, dyn, volt, mem
        )
        for _ in range(3):
            temps = rng.uniform(300.0, 370.0, len(engine.thermal.unit_names))
            expected = power.unit_power_vector(
                state, util, dyn, volt, temps, mem
            )
            got = power.quiet_power_eval(base, leak_mul, temps)
            np.testing.assert_array_equal(expected, got)


@pytest.mark.slow
class TestEventDifferentialMatrix:
    """Full stack x policy x DPM three-column matrix (weekly in CI)."""

    @pytest.mark.parametrize("exp_id", [1, 2, 3, 4])
    @pytest.mark.parametrize("policy", [
        "Default", "AdaptRand", "Adapt3D", "Migr", "DVFS_TT",
        "Adapt3D&DVFS_TT",
    ])
    @pytest.mark.parametrize("with_dpm", [False, True])
    def test_event_matches_eager(self, exp_id, policy, with_dpm):
        spec = RunSpec(exp_id=exp_id, policy=policy, duration_s=6.0,
                       with_dpm=with_dpm, seed=2009)
        assert_event_close(
            run_fidelity(spec, "eager"), run_fidelity(spec, "event")
        )

    @pytest.mark.parametrize("policy", ["Default", "Adapt3D", "DVFS_TT"])
    def test_idle_heavy_event_matrix(self, policy):
        spec = RunSpec(exp_id=4, policy=policy, duration_s=30.0, seed=5,
                       with_dpm=True, benchmark_mix=IDLE_MIX)
        assert_event_close(
            run_fidelity(spec, "eager"), run_fidelity(spec, "event")
        )

    @pytest.mark.parametrize("seed", [11, 12, 13, 14, 15])
    def test_seed_sweep_discrete_identity(self, seed):
        """Any same-time event ties must resolve identically across
        fidelities: sweep seeds and require bitwise discrete planes."""
        spec = RunSpec(exp_id=3, policy="Adapt3D", duration_s=6.0,
                       seed=seed, with_dpm=True)
        assert_event_close(
            run_fidelity(spec, "eager"), run_fidelity(spec, "event")
        )
