"""Chip-level power aggregation tests."""

import pytest

from repro.errors import PowerModelError
from repro.floorplan.experiments import build_experiment
from repro.power.chip_power import ChipPowerModel, CoreActivity
from repro.power.states import CoreState
from repro.power.vf import DEFAULT_VF_TABLE

NOMINAL = DEFAULT_VF_TABLE[0]


@pytest.fixture(scope="module")
def model():
    return ChipPowerModel(build_experiment(1))


def activities(model, state=CoreState.ACTIVE, util=1.0, vf=NOMINAL):
    return {core: CoreActivity(state, util, vf) for core in model.core_names}


def ambient_temps(config):
    temps = {}
    for plan in config.layers:
        for unit in plan:
            temps[unit.name] = 318.15
    return temps


class TestStructure:
    def test_core_names_canonical(self, model):
        assert model.core_names == [f"L0_core{i}" for i in range(8)]

    def test_cache_assignment_two_cores_per_bank(self, model):
        served = model.cache_serving("L1_l2_0")
        assert served == ["L0_core0", "L0_core1"]

    def test_every_core_served_exactly_once(self, model):
        served = []
        for bank in ("L1_l2_0", "L1_l2_1", "L1_l2_2", "L1_l2_3"):
            served.extend(model.cache_serving(bank))
        assert sorted(served) == sorted(model.core_names)

    def test_unknown_cache_raises(self, model):
        with pytest.raises(PowerModelError):
            model.cache_serving("nope")


class TestUnitPowers:
    def test_covers_every_unit(self, model):
        config = build_experiment(1)
        powers = model.unit_powers(activities(model), ambient_temps(config), 0.5)
        expected = {u.name for plan in config.layers for u in plan}
        assert set(powers) == expected

    def test_all_powers_positive(self, model):
        config = build_experiment(1)
        powers = model.unit_powers(activities(model), ambient_temps(config), 0.5)
        assert all(p > 0.0 for p in powers.values())

    def test_active_chip_total_plausible(self, model):
        """Full-load EXP-1 should land in the tens of watts (T1-class)."""
        config = build_experiment(1)
        powers = model.unit_powers(activities(model), ambient_temps(config), 0.8)
        total = sum(powers.values())
        assert 30.0 < total < 90.0

    def test_sleep_reduces_core_power(self, model):
        config = build_experiment(1)
        active = model.unit_powers(activities(model), ambient_temps(config), 0.5)
        asleep = model.unit_powers(
            activities(model, CoreState.SLEEP, 0.0), ambient_temps(config), 0.5
        )
        assert asleep["L0_core0"] == pytest.approx(0.02)
        assert asleep["L0_core0"] < active["L0_core0"]

    def test_dvfs_reduces_core_power(self, model):
        config = build_experiment(1)
        fast = model.unit_powers(activities(model), ambient_temps(config), 0.5)
        slow = model.unit_powers(
            activities(model, vf=DEFAULT_VF_TABLE[2]), ambient_temps(config), 0.5
        )
        assert slow["L0_core0"] < fast["L0_core0"]

    def test_leakage_feedback_via_temperature(self, model):
        config = build_experiment(1)
        cool = model.unit_powers(activities(model), ambient_temps(config), 0.5)
        hot_temps = {name: 370.0 for name in ambient_temps(config)}
        hot = model.unit_powers(activities(model), hot_temps, 0.5)
        assert hot["L0_core0"] > cool["L0_core0"]

    def test_missing_core_activity_raises(self, model):
        config = build_experiment(1)
        acts = activities(model)
        del acts["L0_core0"]
        with pytest.raises(PowerModelError):
            model.unit_powers(acts, ambient_temps(config), 0.5)

    def test_idle_chip_draws_less_than_active(self, model):
        config = build_experiment(1)
        active = model.unit_powers(activities(model), ambient_temps(config), 0.5)
        idle = model.unit_powers(
            activities(model, CoreState.IDLE, 0.0), ambient_temps(config), 0.0
        )
        assert sum(idle.values()) < sum(active.values())


class TestMixedLayers:
    def test_exp2_crossbars_per_layer(self):
        model = ChipPowerModel(build_experiment(2))
        config = build_experiment(2)
        powers = model.unit_powers(
            {c: CoreActivity(CoreState.ACTIVE, 1.0, NOMINAL) for c in model.core_names},
            ambient_temps(config),
            0.5,
        )
        assert "L0_xbar" in powers and "L1_xbar" in powers
