"""RC network assembly tests: structure and physical sanity."""

import numpy as np
import pytest
from scipy import sparse

from repro.errors import ThermalModelError
from repro.floorplan.experiments import build_experiment
from repro.thermal.materials import AMBIENT_K
from repro.thermal.network import build_network
from repro.thermal.stack import build_stack


@pytest.fixture(scope="module")
def network():
    return build_network(build_stack(build_experiment(1)), 4, 4, AMBIENT_K)


class TestStructure:
    def test_node_count(self, network):
        # 4 slabs (sink, spreader, 2 dies) x 16 cells + convection node.
        assert network.n_nodes == 4 * 16 + 1

    def test_sink_node_is_last(self, network):
        assert network.sink_node == network.n_nodes - 1

    def test_layer_slices_partition_grid_nodes(self, network):
        seen = set()
        for layer in range(4):
            sl = network.layer_slice(layer)
            indices = set(range(sl.start, sl.stop))
            assert not indices & seen
            seen |= indices
        assert len(seen) == network.n_nodes - 1

    def test_rejects_degenerate_grid(self):
        with pytest.raises(ThermalModelError):
            build_network(build_stack(build_experiment(1)), 0, 4, AMBIENT_K)


class TestPhysics:
    def test_conductance_symmetric(self, network):
        G = network.conductance
        assert (abs(G - G.T) > 1e-12).nnz == 0

    def test_row_sums_zero_except_ambient(self, network):
        """G is a Laplacian plus the ambient coupling on the diagonal:
        row sums equal the per-node ambient conductance."""
        row_sums = np.asarray(network.conductance.sum(axis=1)).ravel()
        np.testing.assert_allclose(row_sums, network.ambient_conductance, atol=1e-9)

    def test_capacitances_positive(self, network):
        assert (network.capacitance > 0.0).all()

    def test_convection_node_capacitance_matches_table2(self, network):
        assert network.capacitance[network.sink_node] == pytest.approx(140.0)

    def test_ambient_conductance_only_at_convection_node(self, network):
        nonzero = np.nonzero(network.ambient_conductance)[0]
        assert list(nonzero) == [network.sink_node]
        assert network.ambient_conductance[network.sink_node] == pytest.approx(10.0)

    def test_positive_definite(self, network):
        # G with the ambient tie is positive definite (grounded Laplacian).
        eigenvalue = sparse.linalg.eigsh(
            network.conductance.asfptype(), k=1, which="SA",
            return_eigenvectors=False,
        )[0]
        assert eigenvalue > 0.0

    def test_interlayer_resistance_reduces_vertical_conductance(self):
        """The die0-die1 coupling crosses the bonding material, so it is
        weaker than the spreader-die0 coupling (direct contact)."""
        stack = build_stack(build_experiment(1))
        net = build_network(stack, 2, 2, AMBIENT_K)
        G = net.conductance.toarray()
        cells = 4
        spreader0 = 1 * cells + 0
        die0_0 = 2 * cells + 0
        die1_0 = 3 * cells + 0
        g_spreader_die = -G[spreader0, die0_0]
        g_die_die = -G[die0_0, die1_0]
        assert g_spreader_die > 0 and g_die_die > 0
        assert g_die_die < g_spreader_die
