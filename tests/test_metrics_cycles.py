"""Thermal cycle metric and rainflow counter tests."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.metrics.cycles import (
    rainflow_count,
    sliding_window_deltas,
    thermal_cycle_fraction,
)


class TestSlidingWindow:
    def test_constant_series_zero_delta(self):
        temps = np.full((30, 2), 350.0)
        deltas = sliding_window_deltas(temps, window_ticks=10)
        np.testing.assert_allclose(deltas, 0.0)

    def test_step_produces_delta(self):
        temps = np.full((30, 1), 340.0)
        temps[15:] = 365.0
        deltas = sliding_window_deltas(temps, window_ticks=10)
        assert deltas.max() == pytest.approx(25.0)

    def test_core_averaging(self):
        temps = np.full((20, 2), 340.0)
        temps[10:, 0] = 370.0  # only core 0 swings
        deltas = sliding_window_deltas(temps, window_ticks=10)
        assert deltas.max() == pytest.approx(15.0)  # (30 + 0) / 2

    def test_window_validation(self):
        temps = np.full((5, 1), 340.0)
        with pytest.raises(ConfigurationError):
            sliding_window_deltas(temps, window_ticks=10)
        with pytest.raises(ConfigurationError):
            sliding_window_deltas(temps, window_ticks=1)


class TestCycleFraction:
    def test_per_core_counts_individual_cores(self):
        temps = np.full((40, 2), 340.0)
        temps[20:, 0] = 365.0  # 25 K swing on core 0 only
        per_core = thermal_cycle_fraction(temps, window_ticks=10)
        core_mean = thermal_cycle_fraction(
            temps, window_ticks=10, aggregate="core_mean"
        )
        assert per_core > 0.0
        assert core_mean == 0.0  # averaged swing is 12.5 K < 20 K

    def test_zero_for_steady_chip(self):
        temps = np.full((40, 4), 350.0)
        assert thermal_cycle_fraction(temps) == 0.0

    def test_bad_aggregate(self):
        with pytest.raises(ConfigurationError):
            thermal_cycle_fraction(np.full((40, 2), 340.0), aggregate="nope")


class TestRainflow:
    def test_simple_triangle_wave(self):
        series = np.array([0.0, 10.0, 0.0, 10.0, 0.0])
        cycles = rainflow_count(series)
        total = sum(count for _, count in cycles)
        assert total == pytest.approx(2.0)
        assert all(magnitude == pytest.approx(10.0) for magnitude, _ in cycles)

    def test_nested_cycle_extracted(self):
        # Classic rainflow example: small cycle nested in a large one.
        series = np.array([0.0, 8.0, 3.0, 5.0, 0.0])
        cycles = rainflow_count(series)
        magnitudes = sorted(m for m, _ in cycles)
        assert magnitudes[0] == pytest.approx(2.0)  # the nested 3->5 cycle

    def test_monotone_series_half_cycle(self):
        cycles = rainflow_count(np.array([0.0, 5.0]))
        assert cycles == [(5.0, 0.5)]

    def test_constant_series_empty(self):
        assert rainflow_count(np.array([1.0, 1.0, 1.0])) == []

    def test_rejects_2d(self):
        with pytest.raises(ConfigurationError):
            rainflow_count(np.zeros((3, 3)))
