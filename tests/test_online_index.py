"""Online thermal-index estimation tests (paper §III-B runtime option)."""

import pytest

from repro.core.adapt3d import Adapt3D
from repro.errors import PolicyError

from tests.conftest import make_system_view, make_tick


def attach(policy):
    policy.attach(make_system_view(4))
    return policy


class TestOnlineIndices:
    def test_rejects_tiny_window(self):
        with pytest.raises(PolicyError):
            Adapt3D(online_index_window=1)

    def test_offline_indices_until_window_full(self):
        policy = attach(Adapt3D(online_index_window=20))
        offline = dict(policy._alphas)
        for _ in range(10):
            policy.on_tick(make_tick({"c0": 90.0, "c1": 50.0, "c2": 50.0, "c3": 50.0}))
        assert policy._alphas == offline

    def test_online_estimate_tracks_observed_ranking(self):
        """Once the long window fills, the hottest core must carry the
        highest index regardless of the offline assignment."""
        policy = attach(Adapt3D(online_index_window=15))
        # c0 (offline alpha 0.2, layer 0) is observed hottest.
        temps = {"c0": 90.0, "c1": 55.0, "c2": 60.0, "c3": 58.0}
        for _ in range(20):
            policy.on_tick(make_tick(temps))
        alphas = policy._alphas
        assert alphas["c0"] == max(alphas.values())
        assert alphas["c0"] == pytest.approx(0.85)
        assert alphas["c1"] == pytest.approx(0.15)

    def test_uniform_temperatures_keep_previous_indices(self):
        policy = attach(Adapt3D(online_index_window=10))
        before = dict(policy._alphas)
        for _ in range(15):
            policy.on_tick(make_tick({n: 60.0 for n in ("c0", "c1", "c2", "c3")}))
        assert policy._alphas == before

    def test_offline_and_online_similar_on_real_system(self):
        """Paper: static and dynamic selection gave very similar
        results. On EXP-3, the online estimate must reproduce the
        offline layer ordering."""
        from repro.analysis.runner import ExperimentRunner, RunSpec

        runner = ExperimentRunner()
        spec = RunSpec(exp_id=3, policy="Adapt3D", duration_s=40.0, with_dpm=True)
        engine = runner.build_engine(spec)
        engine.policy = Adapt3D(online_index_window=200)
        engine.policy.attach(engine.system_view)
        engine.run()
        alphas = engine.policy._alphas
        lower = [alphas[f"L0_core{i}"] for i in range(8)]
        upper = [alphas[f"L2_core{i}"] for i in range(8)]
        assert sum(upper) / 8 > sum(lower) / 8
