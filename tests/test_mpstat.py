"""mpstat parser tests."""

import pytest

from repro.errors import WorkloadError
from repro.workload.mpstat import parse_mpstat

SAMPLE = """\
CPU minf mjf xcal  intr ithr  csw icsw migr smtx  srw syscl  usr sys  wt idl
  0    1   0    0   217  109  112    1    5    3    0   528   45   3   0  52
  1    0   0    0    94   57   40    0    2    2    0   191   80   1   0  19
CPU minf mjf xcal  intr ithr  csw icsw migr smtx  srw syscl  usr sys  wt idl
  0    1   0    0   217  109  112    1    5    3    0   528   60   5   0  35
  1    0   0    0    94   57   40    0    2    2    0   191   20   2   0  78
CPU minf mjf xcal  intr ithr  csw icsw migr smtx  srw syscl  usr sys  wt idl
  0    1   0    0   217  109  112    1    5    3    0   528   90   5   0   5
  1    0   0    0    94   57   40    0    2    2    0   191   10   0   0  90
"""


class TestParser:
    def test_discards_since_boot_block(self):
        trace = parse_mpstat(SAMPLE)
        # 3 blocks, first discarded.
        assert trace.n_samples == 2
        assert trace.n_cores == 2

    def test_usr_plus_sys(self):
        trace = parse_mpstat(SAMPLE)
        assert trace.utilization[0, 0] == pytest.approx(0.65)
        assert trace.utilization[1, 1] == pytest.approx(0.10)

    def test_clamps_to_one(self):
        text = SAMPLE.replace("  90   5", "  99   9")
        trace = parse_mpstat(text)
        assert trace.utilization.max() <= 1.0

    def test_file_input(self, tmp_path):
        path = tmp_path / "mpstat.txt"
        path.write_text(SAMPLE)
        trace = parse_mpstat(path)
        assert trace.n_samples == 2

    def test_rejects_empty(self):
        with pytest.raises(WorkloadError):
            parse_mpstat("no samples here\n")

    def test_rejects_malformed_row(self):
        bad = (
            "CPU minf mjf xcal intr ithr csw icsw migr smtx srw syscl usr sys wt idl\n"
            "garbage row that is long enough to index usr sys columns ok? no\n"
        )
        with pytest.raises(WorkloadError):
            parse_mpstat(bad)
