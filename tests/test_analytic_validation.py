"""Analytic validation of the thermal network (DESIGN.md §3 promise).

On a 1x1 grid the RC network degenerates to a pure series resistance
chain whose steady state is computable by hand:

    T_die = T_amb + P * (R_die->spr + R_spr->sink + R_sink->conv + R_conv)

with each inter-slab resistance the sum of the half-thickness bulk
terms (plus interface material where present). These tests check the
solver against that closed form, including the interlayer term.
"""

import numpy as np
import pytest

from repro.floorplan.experiments import build_experiment
from repro.thermal.materials import AMBIENT_K
from repro.thermal.network import build_network
from repro.thermal.solver import SteadyStateSolver
from repro.thermal.stack import build_stack


def series_resistances(stack, area):
    """Hand-computed inter-slab resistances, sink-side first."""
    resistances = []
    layers = stack.layers
    for lower, upper in zip(layers, layers[1:]):
        r = lower.thickness_m / (2.0 * lower.material.conductivity * area)
        if lower.interface_resistivity is not None:
            r += lower.interface_resistivity * lower.interface_thickness_m / area
        r += upper.thickness_m / (2.0 * upper.material.conductivity * area)
        resistances.append(r)
    sink = layers[0]
    r_sink_conv = sink.thickness_m / (
        2.0 * sink.material.conductivity * area
    ) + stack.internal_resistance
    return resistances, r_sink_conv


class TestAnalytic1D:
    def test_single_die_chain(self):
        """EXP-1 stack on a 1x1 grid: heat die0 and verify every node
        temperature against the series-resistance closed form."""
        stack = build_stack(build_experiment(1))
        area = stack.width_m * stack.height_m
        network = build_network(stack, 1, 1, AMBIENT_K)
        solver = SteadyStateSolver(network)

        power = 20.0
        powers = np.zeros(network.n_nodes)
        die0_node = network.layer_offsets[2]
        powers[die0_node] = power
        temps = solver.solve(powers)

        inter, r_sink_conv = series_resistances(stack, area)
        # Heat path: die0 -> spreader -> sink -> convection node -> ambient.
        expected_conv = AMBIENT_K + power * stack.convection_resistance
        expected_sink = expected_conv + power * r_sink_conv
        expected_spreader = expected_sink + power * inter[0]
        expected_die0 = expected_spreader + power * inter[1]

        assert temps[network.sink_node] == pytest.approx(expected_conv, abs=1e-6)
        assert temps[network.layer_offsets[0]] == pytest.approx(
            expected_sink, abs=1e-6
        )
        assert temps[network.layer_offsets[1]] == pytest.approx(
            expected_spreader, abs=1e-6
        )
        assert temps[die0_node] == pytest.approx(expected_die0, abs=1e-6)

    def test_top_die_sees_interlayer_resistance(self):
        """Heating die1 adds the die0-die1 interlayer term — the 3D
        mechanism the paper's stacks hinge on."""
        stack = build_stack(build_experiment(1))
        area = stack.width_m * stack.height_m
        network = build_network(stack, 1, 1, AMBIENT_K)
        solver = SteadyStateSolver(network)

        power = 20.0
        powers = np.zeros(network.n_nodes)
        die1_node = network.layer_offsets[3]
        powers[die1_node] = power
        temps = solver.solve(powers)

        inter, r_sink_conv = series_resistances(stack, area)
        expected_die1 = (
            AMBIENT_K
            + power
            * (stack.convection_resistance + r_sink_conv + sum(inter))
        )
        assert temps[die1_node] == pytest.approx(expected_die1, abs=1e-6)

    def test_unheated_branches_isothermal_with_path(self):
        """With die1 heated, die0 must sit exactly on the heat path
        temperature (no spurious current into dead ends)."""
        stack = build_stack(build_experiment(1))
        network = build_network(stack, 1, 1, AMBIENT_K)
        solver = SteadyStateSolver(network)
        powers = np.zeros(network.n_nodes)
        powers[network.layer_offsets[2]] = 20.0  # heat die0 only
        temps = solver.solve(powers)
        # die1 carries no flux: same temperature as die0.
        assert temps[network.layer_offsets[3]] == pytest.approx(
            temps[network.layer_offsets[2]], abs=1e-9
        )

    def test_superposition(self):
        """The network is linear: the response to two sources equals the
        sum of the individual responses (rise above ambient)."""
        stack = build_stack(build_experiment(3))
        network = build_network(stack, 2, 2, AMBIENT_K)
        solver = SteadyStateSolver(network)
        p1 = np.zeros(network.n_nodes)
        p2 = np.zeros(network.n_nodes)
        p1[network.layer_offsets[2]] = 7.0
        p2[network.layer_offsets[5] + 3] = 11.0
        rise1 = solver.solve(p1) - AMBIENT_K
        rise2 = solver.solve(p2) - AMBIENT_K
        combined = solver.solve(p1 + p2) - AMBIENT_K
        np.testing.assert_allclose(combined, rise1 + rise2, rtol=1e-9)
