"""CGate and DVFS policy tests."""

import pytest

from repro.core.clock_gating import ClockGating
from repro.core.dvfs_flp import DVFSFloorplanAware
from repro.core.dvfs_tt import DVFSTemperatureTriggered
from repro.core.dvfs_util import DVFSUtilizationBased
from repro.errors import PolicyError

from tests.conftest import make_system_view, make_tick

COOL = {"c0": 60.0, "c1": 62.0, "c2": 61.0, "c3": 59.0}
ONE_HOT = {"c0": 88.0, "c1": 62.0, "c2": 61.0, "c3": 59.0}


def attach(policy, n_cores=4):
    policy.attach(make_system_view(n_cores))
    return policy


class TestClockGating:
    def test_gates_hot_core(self):
        policy = attach(ClockGating())
        actions = policy.on_tick(make_tick(ONE_HOT))
        assert actions.gated == ["c0"]

    def test_ungates_when_cool(self):
        policy = attach(ClockGating())
        policy.on_tick(make_tick(ONE_HOT))
        actions = policy.on_tick(make_tick(COOL))
        assert actions.gated == []

    def test_threshold_is_85(self):
        policy = attach(ClockGating())
        actions = policy.on_tick(make_tick({"c0": 84.9, "c1": 85.0,
                                            "c2": 60.0, "c3": 60.0}))
        assert actions.gated == ["c1"]


class TestDVFSTemperatureTriggered:
    def test_steps_down_while_hot(self):
        policy = attach(DVFSTemperatureTriggered())
        first = policy.on_tick(make_tick(ONE_HOT))
        assert first.vf_settings["c0"] == 1
        second = policy.on_tick(make_tick(ONE_HOT))
        assert second.vf_settings["c0"] == 2

    def test_clamps_at_lowest(self):
        policy = attach(DVFSTemperatureTriggered())
        for _ in range(5):
            actions = policy.on_tick(make_tick(ONE_HOT))
        assert actions.vf_settings["c0"] == 2

    def test_steps_back_up_when_cool(self):
        policy = attach(DVFSTemperatureTriggered())
        policy.on_tick(make_tick(ONE_HOT))
        policy.on_tick(make_tick(ONE_HOT))
        actions = policy.on_tick(make_tick(COOL))
        assert actions.vf_settings["c0"] == 1
        actions = policy.on_tick(make_tick(COOL))
        assert actions.vf_settings["c0"] == 0

    def test_cool_cores_stay_nominal(self):
        policy = attach(DVFSTemperatureTriggered())
        actions = policy.on_tick(make_tick(ONE_HOT))
        assert actions.vf_settings["c1"] == 0


class TestDVFSUtilizationBased:
    def test_low_utilization_gets_lowest_setting(self):
        policy = attach(DVFSUtilizationBased())
        actions = policy.on_tick(make_tick(COOL, utils={"c0": 0.3}))
        assert actions.vf_settings["c0"] == 2

    def test_high_utilization_keeps_nominal(self):
        policy = attach(DVFSUtilizationBased())
        actions = policy.on_tick(make_tick(COOL, utils={"c0": 0.99}))
        assert actions.vf_settings["c0"] == 0

    def test_mid_utilization_intermediate(self):
        policy = attach(DVFSUtilizationBased())
        actions = policy.on_tick(make_tick(COOL, utils={"c0": 0.9}))
        assert actions.vf_settings["c0"] == 1


class TestDVFSFloorplanAware:
    def test_requires_thermal_indices(self):
        from repro.core.base import SystemView
        from repro.power.vf import DEFAULT_VF_TABLE

        bare = SystemView(
            core_names=("c0",),
            core_layer={"c0": 0},
            n_layers=1,
            vf_table=DEFAULT_VF_TABLE,
        )
        policy = DVFSFloorplanAware()
        with pytest.raises(PolicyError):
            policy.attach(bare)

    def test_static_assignment_by_susceptibility(self):
        view = make_system_view(6, n_layers=2)
        policy = DVFSFloorplanAware()
        policy.attach(view)
        temps = {name: 60.0 for name in view.core_names}
        actions = policy.on_tick(make_tick(temps))
        # Odd cores (upper layer, higher alpha) must run at lower V/f
        # than even cores (lower layer).
        upper = [actions.vf_settings[f"c{i}"] for i in (1, 3, 5)]
        lower = [actions.vf_settings[f"c{i}"] for i in (0, 2, 4)]
        assert min(upper) >= max(lower)
        assert max(upper) == 2  # most susceptible at the lowest setting

    def test_assignment_is_static_across_ticks(self):
        view = make_system_view(4)
        policy = DVFSFloorplanAware()
        policy.attach(view)
        temps_a = {name: 60.0 for name in view.core_names}
        temps_b = {name: 90.0 for name in view.core_names}
        a = policy.on_tick(make_tick(temps_a)).vf_settings
        b = policy.on_tick(make_tick(temps_b)).vf_settings
        assert a == b
