"""Hot-spot metric tests."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.metrics.hotspots import hot_spot_fraction, hot_spot_per_core
from repro.thermal.materials import kelvin


def series(*rows):
    return np.array([[kelvin(t) for t in row] for row in rows])


class TestFraction:
    def test_all_cool(self):
        temps = series([60, 61], [62, 63])
        assert hot_spot_fraction(temps) == 0.0

    def test_all_hot(self):
        temps = series([86, 87], [90, 91])
        assert hot_spot_fraction(temps) == 1.0

    def test_per_core_mean(self):
        temps = series([86, 60], [60, 60])
        assert hot_spot_fraction(temps) == pytest.approx(0.25)

    def test_any_core(self):
        temps = series([86, 60], [60, 60])
        assert hot_spot_fraction(temps, aggregate="any_core") == pytest.approx(0.5)

    def test_threshold_inclusive(self):
        temps = series([85.0, 60.0])
        assert hot_spot_fraction(temps) == pytest.approx(0.5)

    def test_custom_threshold(self):
        temps = series([70, 60])
        assert hot_spot_fraction(temps, threshold_k=kelvin(65.0)) == pytest.approx(0.5)

    def test_rejects_bad_shape(self):
        with pytest.raises(ConfigurationError):
            hot_spot_fraction(np.array([1.0, 2.0]))

    def test_rejects_bad_aggregate(self):
        with pytest.raises(ConfigurationError):
            hot_spot_fraction(series([60, 60]), aggregate="nope")


class TestPerCore:
    def test_per_core_values(self):
        temps = series([86, 60], [87, 60], [60, 60], [60, 86])
        result = hot_spot_per_core(temps, ["a", "b"])
        assert result["a"] == pytest.approx(0.5)
        assert result["b"] == pytest.approx(0.25)

    def test_name_count_mismatch(self):
        with pytest.raises(ConfigurationError):
            hot_spot_per_core(series([60, 60]), ["a"])
