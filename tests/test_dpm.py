"""Fixed-timeout DPM tests."""

import pytest

from repro.errors import ConfigurationError
from repro.sched.dpm import FixedTimeoutDPM


class TestDPM:
    def test_sleeps_after_timeout(self):
        dpm = FixedTimeoutDPM(timeout_s=0.5)
        assert not dpm.should_sleep(0.4)
        assert dpm.should_sleep(0.5)
        assert dpm.should_sleep(2.0)

    def test_rejects_bad_timeout(self):
        with pytest.raises(ConfigurationError):
            FixedTimeoutDPM(timeout_s=0.0)

    def test_rejects_negative_wake_latency(self):
        with pytest.raises(ConfigurationError):
            FixedTimeoutDPM(wake_latency_s=-0.1)

    def test_defaults(self):
        dpm = FixedTimeoutDPM()
        assert dpm.timeout_s > 0.0
        assert dpm.wake_latency_s >= 0.0
