"""Simulation engine tests: DES mechanics, DPM, migration cost."""

import numpy as np
import pytest

from repro.analysis.runner import ExperimentRunner, RunSpec
from repro.errors import SchedulerError
from repro.power.states import CoreState
from repro.sched.dpm import FixedTimeoutDPM
from repro.sched.engine import EngineConfig
from repro.workload.benchmarks import benchmark
from repro.workload.generator import SyntheticWorkload


RUNNER = ExperimentRunner()


def short_spec(**kwargs):
    defaults = dict(exp_id=1, policy="Default", duration_s=10.0, seed=7)
    defaults.update(kwargs)
    return RunSpec(**defaults)


@pytest.fixture(scope="module")
def result():
    return RUNNER.run(short_spec())


class TestRunMechanics:
    def test_tick_count(self, result):
        assert result.n_ticks == 100
        assert result.times[-1] == pytest.approx(10.0)

    def test_jobs_complete(self, result):
        completed = result.completed_jobs()
        assert len(completed) > 10
        for job in completed:
            assert job.completion_time >= job.arrival_time
            assert job.remaining_s <= 1e-9

    def test_utilization_in_range(self, result):
        assert (result.utilization >= 0.0).all()
        assert (result.utilization <= 1.0).all()

    def test_temperatures_above_ambient(self, result):
        assert (result.core_temps_k > 300.0).all()
        assert (result.core_temps_k < 420.0).all()

    def test_peak_at_least_mean_series(self, result):
        assert (result.core_peak_temps_k >= result.core_temps_k - 1e-9).all()

    def test_energy_positive_and_consistent(self, result):
        assert result.energy_j > 0.0
        assert result.energy_j == pytest.approx(
            result.total_power_w.sum() * result.sampling_interval_s
        )

    def test_deterministic_given_seed(self):
        a = RUNNER.run(short_spec(seed=3))
        b = RUNNER.run(short_spec(seed=3))
        np.testing.assert_allclose(a.core_temps_k, b.core_temps_k)
        assert len(a.completed_jobs()) == len(b.completed_jobs())

    def test_different_seeds_differ(self):
        a = RUNNER.run(short_spec(seed=3))
        b = RUNNER.run(short_spec(seed=4))
        assert not np.allclose(a.core_temps_k, b.core_temps_k)

    def test_rejects_too_short_duration(self):
        engine = RUNNER.build_engine(short_spec())
        engine.config = EngineConfig(duration_s=0.01)
        with pytest.raises(SchedulerError):
            engine.run()


class TestWorkConservation:
    def test_completed_work_matches_utilization(self):
        """Total executed CPU-time must equal the integral of per-core
        utilization (energy-conservation analogue for the scheduler)."""
        result = RUNNER.run(short_spec(duration_s=20.0))
        executed = sum(
            job.work_s - job.remaining_s for job in result.jobs
        )
        integrated = result.utilization.sum() * result.sampling_interval_s
        assert executed == pytest.approx(integrated, rel=0.02)


class TestDPM:
    def test_sleep_occurs_with_light_load(self):
        spec = short_spec(
            with_dpm=True,
            duration_s=20.0,
            benchmark_mix=(("MPlayer", 8),),  # 6.5% utilization
        )
        result = RUNNER.run(spec)
        sleep_code = list(CoreState).index(CoreState.SLEEP)
        assert (result.core_states == sleep_code).any()

    def test_dpm_saves_energy(self):
        light = (("MPlayer", 8),)
        base = RUNNER.run(short_spec(duration_s=20.0, benchmark_mix=light))
        with_dpm = RUNNER.run(
            short_spec(duration_s=20.0, with_dpm=True, benchmark_mix=light)
        )
        assert with_dpm.energy_j < base.energy_j

    def test_no_sleep_without_dpm(self):
        result = RUNNER.run(short_spec(duration_s=10.0))
        sleep_code = list(CoreState).index(CoreState.SLEEP)
        assert not (result.core_states == sleep_code).any()


class TestMigrationAccounting:
    def test_migr_policy_counts_migrations(self):
        # A hot 4-tier system forces thermal migrations.
        spec = RunSpec(exp_id=4, policy="Migr", duration_s=20.0, seed=7)
        result = RUNNER.run(spec)
        assert result.migrations > 0
        migrated = [job for job in result.jobs if job.migrations > 0]
        assert migrated


class TestPolicyVisibleState:
    def test_vf_indices_recorded(self):
        spec = RunSpec(exp_id=4, policy="DVFS_TT", duration_s=20.0, seed=7)
        result = RUNNER.run(spec)
        assert result.vf_indices.max() > 0  # some throttling happened

    def test_gating_recorded_as_state(self):
        spec = RunSpec(exp_id=4, policy="CGate", duration_s=20.0, seed=7)
        result = RUNNER.run(spec)
        gated_code = list(CoreState).index(CoreState.GATED)
        assert (result.core_states == gated_code).any()
