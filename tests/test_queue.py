"""Dispatch queue tests."""

import pytest

from repro.errors import SchedulerError
from repro.workload.benchmarks import benchmark
from repro.workload.job import Job


from repro.sched.queue import DispatchQueue


def make_job(job_id, work=1.0):
    return Job(job_id, job_id, benchmark("gcc"), 0.0, work)


class TestQueue:
    def test_push_binds_core(self):
        queue = DispatchQueue("core0")
        job = make_job(1)
        queue.push(job)
        assert job.core == "core0"
        assert queue.running is job

    def test_fifo_order(self):
        queue = DispatchQueue("core0")
        first, second = make_job(1), make_job(2)
        queue.push(first)
        queue.push(second)
        assert queue.running is first
        assert queue.jobs() == [first, second]

    def test_pop_finished_requires_completion(self):
        queue = DispatchQueue("core0")
        job = make_job(1)
        queue.push(job)
        with pytest.raises(SchedulerError):
            queue.pop_finished()
        job.remaining_s = 0.0
        assert queue.pop_finished() is job
        assert len(queue) == 0

    def test_pop_empty_raises(self):
        with pytest.raises(SchedulerError):
            DispatchQueue("core0").pop_finished()

    def test_steal_head(self):
        queue = DispatchQueue("core0")
        first, second = make_job(1), make_job(2)
        queue.push(first)
        queue.push(second)
        assert queue.steal() is first
        assert queue.running is second

    def test_steal_specific(self):
        queue = DispatchQueue("core0")
        first, second = make_job(1), make_job(2)
        queue.push(first)
        queue.push(second)
        assert queue.steal(second) is second
        assert queue.jobs() == [first]

    def test_steal_missing_raises(self):
        queue = DispatchQueue("core0")
        queue.push(make_job(1))
        with pytest.raises(SchedulerError):
            queue.steal(make_job(99))

    def test_steal_empty_raises(self):
        with pytest.raises(SchedulerError):
            DispatchQueue("core0").steal()

    def test_total_remaining(self):
        queue = DispatchQueue("core0")
        queue.push(make_job(1, 2.0))
        queue.push(make_job(2, 3.0))
        assert queue.total_remaining_s() == pytest.approx(5.0)
