"""TSV joint-resistivity model tests (paper Figure 2, §IV-C)."""

import pytest

from repro.errors import ThermalModelError
from repro.floorplan.ultrasparc import LAYER_AREA_M2
from repro.thermal.tsv import (
    DEFAULT_TSV,
    TSVTechnology,
    area_overhead,
    default_density_sweep,
    joint_resistivity,
    joint_resistivity_for_via_count,
    resistivity_curve,
    vias_per_mm2,
)


class TestGeometry:
    def test_footprint_includes_keepout(self):
        # 10 um via + 10 um spacing each side -> 30 um pitch.
        assert DEFAULT_TSV.footprint_area_m2 == pytest.approx((30e-6) ** 2)

    def test_copper_fill_ratio_below_one(self):
        assert 0.0 < DEFAULT_TSV.copper_fill_ratio < 1.0


class TestJointResistivity:
    def test_zero_density_gives_bond_material(self):
        assert joint_resistivity(0.0) == pytest.approx(0.25)

    def test_monotonically_decreasing(self):
        values = [joint_resistivity(d) for d in default_density_sweep()]
        assert all(a >= b for a, b in zip(values, values[1:]))

    def test_paper_configuration_near_023(self):
        # 1024 vias on a 115 mm2 layer -> ~0.23 mK/W (paper §IV-C).
        rho = joint_resistivity_for_via_count(1024, LAYER_AREA_M2)
        assert rho == pytest.approx(0.23, abs=0.01)

    def test_paper_area_overhead_below_one_percent(self):
        assert area_overhead(1024, LAYER_AREA_M2) < 0.01

    def test_paper_density_over_8_vias_per_mm2(self):
        assert vias_per_mm2(1024, LAYER_AREA_M2) > 8.0

    def test_rejects_invalid_density(self):
        with pytest.raises(ThermalModelError):
            joint_resistivity(-0.1)
        with pytest.raises(ThermalModelError):
            joint_resistivity(1.5)

    def test_rejects_negative_via_count(self):
        with pytest.raises(ThermalModelError):
            joint_resistivity_for_via_count(-1, LAYER_AREA_M2)

    def test_curve_matches_pointwise(self):
        curve = resistivity_curve([0.0, 0.01])
        assert curve[0][1] == pytest.approx(joint_resistivity(0.0))
        assert curve[1][1] == pytest.approx(joint_resistivity(0.01))

    def test_custom_technology(self):
        tech = TSVTechnology(via_diameter_m=20e-6, keepout_m=5e-6)
        # Bigger vias, less keep-out -> more copper -> lower resistivity.
        assert joint_resistivity(0.01, tech) < joint_resistivity(0.01)


class TestEffectOnTemperature:
    def test_density_effect_is_a_few_degrees(self):
        """§IV-C: even at 1-2% density the temperature effect is limited
        to a few degrees — verified through the full thermal model."""
        from dataclasses import replace

        from repro.floorplan.experiments import build_experiment
        from repro.thermal.model import ThermalModel

        config = build_experiment(1)
        powers = None
        peaks = {}
        for density in (0.0, 0.02):
            cfg = replace(config, interlayer_resistivity=joint_resistivity(density))
            model = ThermalModel(cfg)
            if powers is None:
                powers = {
                    name: 3.0 if model.unit_kind(name).value == "core" else 1.0
                    for name in model.unit_names
                }
            steady = model.steady_state(powers)
            peaks[density] = max(steady.values())
        difference = peaks[0.0] - peaks[0.02]
        assert 0.0 <= difference < 5.0
