"""Thermal-index computation tests (§III-B offline analysis)."""

import pytest

from repro.core.thermal_index import compute_thermal_indices
from repro.errors import PolicyError
from repro.floorplan.experiments import build_experiment
from repro.power.chip_power import ChipPowerModel
from repro.thermal.model import ThermalModel


@pytest.fixture(scope="module")
def exp3_indices():
    config = build_experiment(3)
    thermal = ThermalModel(config, nrows=6, ncols=6)
    power = ChipPowerModel(config)
    return compute_thermal_indices(thermal, power)


class TestIndices:
    def test_all_cores_covered(self, exp3_indices):
        assert len(exp3_indices) == 16

    def test_range_open_unit_interval(self, exp3_indices):
        for alpha in exp3_indices.values():
            assert 0.0 < alpha < 1.0

    def test_upper_layer_more_susceptible(self, exp3_indices):
        """Cores far from the heat sink must carry higher indices."""
        lower = [exp3_indices[f"L0_core{i}"] for i in range(8)]
        upper = [exp3_indices[f"L2_core{i}"] for i in range(8)]
        assert min(upper) > max(lower)

    def test_extremes_hit_normalization_bounds(self, exp3_indices):
        values = sorted(exp3_indices.values())
        assert values[0] == pytest.approx(0.15)
        assert values[-1] == pytest.approx(0.85)

    def test_invalid_range_rejected(self):
        config = build_experiment(1)
        thermal = ThermalModel(config, nrows=4, ncols=4)
        power = ChipPowerModel(config)
        with pytest.raises(PolicyError):
            compute_thermal_indices(thermal, power, alpha_min=0.9, alpha_max=0.2)

    def test_single_layer_uniform_midpoint(self):
        """EXP-1 has all cores on one layer; indices still spread by
        in-layer position, but the range respects the bounds."""
        config = build_experiment(1)
        thermal = ThermalModel(config, nrows=6, ncols=6)
        power = ChipPowerModel(config)
        indices = compute_thermal_indices(thermal, power)
        assert len(indices) == 8
        assert all(0.0 < a < 1.0 for a in indices.values())
