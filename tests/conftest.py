"""Shared test fixtures: lightweight policy-test harness."""

from __future__ import annotations

from typing import Dict, Optional

import pytest

from repro.core.base import (
    AllocationContext,
    CoreSnapshot,
    SystemView,
    TickContext,
)
from repro.power.states import CoreState
from repro.power.vf import DEFAULT_VF_TABLE
from repro.thermal.materials import kelvin
from repro.workload.benchmarks import benchmark
from repro.workload.job import Job


def make_system_view(n_cores: int = 4, n_layers: int = 2) -> SystemView:
    """A small 3D system: even cores on layer 0, odd cores on layer 1."""
    names = tuple(f"c{i}" for i in range(n_cores))
    layers = {name: i % n_layers for i, name in enumerate(names)}
    # Higher layer -> more hot-spot prone.
    indices = {
        name: 0.2 + 0.6 * layers[name] / max(1, n_layers - 1) for name in names
    }
    positions = {name: (float(i), 0.0) for i, name in enumerate(names)}
    return SystemView(
        core_names=names,
        core_layer=layers,
        n_layers=n_layers,
        vf_table=DEFAULT_VF_TABLE,
        thermal_indices=indices,
        core_positions=positions,
    )


def make_tick(
    temps_c: Dict[str, float],
    utils: Optional[Dict[str, float]] = None,
    queues: Optional[Dict[str, int]] = None,
    states: Optional[Dict[str, CoreState]] = None,
    vf: Optional[Dict[str, int]] = None,
    time: float = 1.0,
) -> TickContext:
    cores = {}
    for name, temp_c in temps_c.items():
        cores[name] = CoreSnapshot(
            temperature_k=kelvin(temp_c),
            utilization=(utils or {}).get(name, 0.5),
            state=(states or {}).get(name, CoreState.ACTIVE),
            vf_index=(vf or {}).get(name, 0),
            queue_length=(queues or {}).get(name, 1),
        )
    return TickContext(time=time, cores=cores)


def make_alloc(
    temps_c: Dict[str, float],
    queues: Optional[Dict[str, int]] = None,
    states: Optional[Dict[str, CoreState]] = None,
    last_core: Optional[str] = None,
    time: float = 1.0,
) -> AllocationContext:
    return AllocationContext(
        time=time,
        queue_lengths={n: (queues or {}).get(n, 0) for n in temps_c},
        temperatures_k={n: kelvin(t) for n, t in temps_c.items()},
        states={n: (states or {}).get(n, CoreState.IDLE) for n in temps_c},
        last_core=last_core,
    )


def make_test_job(job_id: int = 0, thread_id: int = 0) -> Job:
    return Job(job_id, thread_id, benchmark("Web-med"), 0.0, 0.5)


@pytest.fixture
def system4():
    return make_system_view(4)


@pytest.fixture
def system8():
    return make_system_view(8, n_layers=4)
