"""Result CSV export tests."""

import numpy as np
import pytest

from repro.analysis.result_io import export_result, load_temperature_csv
from repro.analysis.runner import ExperimentRunner, RunSpec
from repro.errors import ConfigurationError

RUNNER = ExperimentRunner()


@pytest.fixture(scope="module")
def result():
    return RUNNER.run(RunSpec(exp_id=1, policy="Default", duration_s=5.0))


class TestExport:
    def test_writes_three_files(self, result, tmp_path):
        paths = export_result(result, tmp_path / "run")
        assert len(paths) == 3
        for path in paths:
            assert path.exists()
            assert path.stat().st_size > 0

    def test_temperature_round_trip(self, result, tmp_path):
        paths = export_result(result, tmp_path / "run")
        times, names, temps = load_temperature_csv(paths[0])
        assert names == result.unit_names
        np.testing.assert_allclose(times, result.times, atol=1e-3)
        np.testing.assert_allclose(temps, result.unit_temps_k, atol=1e-3)

    def test_jobs_csv_rows_match_completions(self, result, tmp_path):
        paths = export_result(result, tmp_path / "run")
        lines = paths[2].read_text().strip().splitlines()
        assert len(lines) - 1 == len(result.completed_jobs())

    def test_load_rejects_garbage(self, tmp_path):
        path = tmp_path / "bad.csv"
        path.write_text("nope,nope\n1,2\n")
        with pytest.raises(ConfigurationError):
            load_temperature_csv(path)

    def test_load_rejects_empty(self, tmp_path):
        path = tmp_path / "empty.csv"
        path.write_text("time_s,u0\n")
        with pytest.raises(ConfigurationError):
            load_temperature_csv(path)
