"""Span-fidelity differential harness and span-primitive unit tests.

The span engine (``EngineConfig(fidelity="span")``) is an opt-in
approximate-equality mode: lazy per-core span execution, trusted
completion events, and quiet-stretch fast-forward through the thermal
model's multi-interval propagator. Its contract (docs/ENGINE.md) is not
bit-identity but bounded agreement with the eager reference:

- identical completed-job counts and migration counts,
- identical discrete planes (V/f levels, state codes) in practice,
- recorded thermal planes within ``SPAN_TOL_K`` (1e-3 K),
- energy within ``SPAN_TOL_ENERGY`` (0.1%).

A fast slice of the differential matrix runs in tier-1; the full
stack x policy x DPM matrix runs under ``-m slow`` (weekly in CI).
The thermal-primitive tests pin the multi-interval propagator cache and
the span-compiled readback rows against sequential stepping.
"""

from dataclasses import replace

import numpy as np
import pytest

from repro.analysis.runner import ExperimentRunner, RunSpec
from repro.errors import SchedulerError, ThermalModelError
from repro.floorplan.experiments import build_experiment
from repro.sched.batch import (
    BatchSimulationEngine,
    _DVFSBatchTick,
    _ProbabilisticBatchTick,
)
from repro.sched.engine import EngineConfig, SimulationEngine
from repro.thermal.model import ThermalModel

RUNNER = ExperimentRunner()

#: Documented span-vs-eager tolerance (docs/ENGINE.md).
SPAN_TOL_K = 1e-3
SPAN_TOL_ENERGY = 1e-3

THERMAL_ARRAYS = (
    "unit_temps_k",
    "core_temps_k",
    "core_peak_temps_k",
    "layer_spreads_k",
)

DISCRETE_ARRAYS = ("vf_indices", "core_states")

#: Two long-running threads leave multi-tick event-free stretches once
#: the stack settles — the workload shape the fast-forward compiles.
QUIET_MIX = (("gcc", 2),)


def run_fidelity(spec, fidelity, **config_overrides):
    engine = RUNNER.build_engine(spec)
    engine.config = replace(
        engine.config, fidelity=fidelity, **config_overrides
    )
    return engine.run()


def assert_span_close(eager, span):
    """Assert the documented span-vs-eager agreement contract."""
    np.testing.assert_array_equal(eager.times, span.times)
    for name in DISCRETE_ARRAYS:
        np.testing.assert_array_equal(
            getattr(eager, name), getattr(span, name), err_msg=name
        )
    for name in THERMAL_ARRAYS:
        np.testing.assert_allclose(
            getattr(eager, name), getattr(span, name),
            rtol=0.0, atol=SPAN_TOL_K, err_msg=name,
        )
    np.testing.assert_allclose(
        eager.utilization, span.utilization, rtol=0.0, atol=1e-9
    )
    assert abs(eager.energy_j - span.energy_j) <= (
        SPAN_TOL_ENERGY * eager.energy_j
    )
    assert eager.migrations == span.migrations
    assert len(eager.completed_jobs()) == len(span.completed_jobs())
    for je, js in zip(eager.jobs, span.jobs):
        assert je.core == js.core
        if je.finished and js.finished:
            assert abs(je.completion_time - js.completion_time) <= 1e-6


def count_fast_forwards(monkeypatch):
    """Patch the fast-forward to count spans/ticks it consumes."""
    calls = {"spans": 0, "ticks": 0}
    original = SimulationEngine._fast_forward

    def wrapper(self, rec, tick, dt, quiet, powers_buf, unit_row):
        result = original(self, rec, tick, dt, quiet, powers_buf, unit_row)
        if result[0]:
            calls["spans"] += 1
            calls["ticks"] += result[0]
        return result

    monkeypatch.setattr(SimulationEngine, "_fast_forward", wrapper)
    return calls


class TestSpanDifferentialFast:
    """Tier-1 smoke slice of the span-vs-eager differential."""

    @pytest.mark.parametrize("exp_id", [1, 4])
    @pytest.mark.parametrize("policy", ["Default", "Adapt3D"])
    def test_span_matches_eager(self, exp_id, policy):
        spec = RunSpec(exp_id=exp_id, policy=policy, duration_s=6.0, seed=3)
        assert_span_close(
            run_fidelity(spec, "eager"), run_fidelity(spec, "span")
        )

    def test_span_matches_eager_with_dpm(self):
        spec = RunSpec(exp_id=1, policy="Migr", duration_s=6.0,
                       with_dpm=True, seed=3)
        assert_span_close(
            run_fidelity(spec, "eager"), run_fidelity(spec, "span")
        )

    def test_span_matches_eager_tight_settle_gate(self):
        """span_settle_k=0.0 can never pass the settledness gate, so no
        stretch fast-forwards: lazy span execution alone must hold the
        tolerance contract (config-coverage of the settle knob)."""
        spec = RunSpec(exp_id=1, policy="Adapt3D", duration_s=6.0, seed=3,
                       benchmark_mix=QUIET_MIX)
        assert_span_close(
            run_fidelity(spec, "eager"),
            run_fidelity(spec, "span", span_settle_k=0.0),
        )

    def test_span_matches_eager_with_sensor_noise(self):
        """Noisy sensors draw per tick in both modes, so the RNG streams
        stay aligned and decisions agree."""
        spec = RunSpec(exp_id=4, policy="Adapt3D", duration_s=6.0, seed=3,
                       sensor_noise_sigma=1.0)
        assert_span_close(
            run_fidelity(spec, "eager"), run_fidelity(spec, "span")
        )

    def test_span_matches_eager_dvfs(self):
        spec = RunSpec(exp_id=2, policy="Adapt3D&DVFS_TT", duration_s=6.0,
                       with_dpm=True, seed=3)
        assert_span_close(
            run_fidelity(spec, "eager"), run_fidelity(spec, "span")
        )


class TestSpanFastForward:
    """The quiet-stretch fast-forward: triggers, closes, stays in
    tolerance."""

    def test_quiet_workload_fast_forwards(self, monkeypatch):
        calls = count_fast_forwards(monkeypatch)
        spec = RunSpec(exp_id=2, policy="Default", duration_s=30.0, seed=5,
                       benchmark_mix=QUIET_MIX)
        eager = run_fidelity(spec, "eager")
        span = run_fidelity(spec, "span")
        assert calls["spans"] > 0
        assert calls["ticks"] > 2 * calls["spans"] - calls["spans"]
        assert_span_close(eager, span)

    def test_fast_forward_with_dpm_and_policy(self, monkeypatch):
        """DPM transitions and policy actions mid-span close the span
        at the acting tick; the recording stays within tolerance."""
        calls = count_fast_forwards(monkeypatch)
        spec = RunSpec(exp_id=2, policy="Adapt3D", duration_s=30.0, seed=5,
                       with_dpm=True, benchmark_mix=QUIET_MIX)
        eager = run_fidelity(spec, "eager")
        span = run_fidelity(spec, "span")
        assert calls["spans"] > 0
        assert_span_close(eager, span)

    def test_settle_gate_blocks_unsettled_spans(self, monkeypatch):
        """During fast transients the settledness gate must keep the
        engine on the exact per-tick path."""
        calls = count_fast_forwards(monkeypatch)
        spec = RunSpec(exp_id=4, policy="Adapt3D", duration_s=6.0, seed=3)
        run_fidelity(spec, "span")
        assert calls["spans"] == 0  # dense-event workload: nothing quiet

    def test_implicit_solver_disables_fast_forward(self, monkeypatch):
        """No exponential propagator -> span mode still runs (lazy
        spans), just without multi-tick jumps."""
        calls = count_fast_forwards(monkeypatch)
        spec = RunSpec(exp_id=1, policy="Default", duration_s=10.0, seed=5,
                       benchmark_mix=QUIET_MIX,
                       thermal_solver="backward_euler")
        eager = run_fidelity(spec, "eager")
        span = run_fidelity(spec, "span")
        assert calls["ticks"] == 0
        assert_span_close(eager, span)

    def test_span_horizon_cap_respected(self, monkeypatch):
        spans = []
        original = SimulationEngine._fast_forward

        def wrapper(self, rec, tick, dt, quiet, powers_buf, unit_row):
            result = original(
                self, rec, tick, dt, quiet, powers_buf, unit_row
            )
            if result[0]:
                spans.append(result[0])
            return result

        monkeypatch.setattr(SimulationEngine, "_fast_forward", wrapper)
        spec = RunSpec(exp_id=2, policy="Default", duration_s=30.0, seed=5,
                       benchmark_mix=QUIET_MIX)
        run_fidelity(spec, "span", span_horizon_ticks=3)
        assert spans and max(spans) <= 3


class TestSpanTelemetry:
    """Telemetry on the span engine: non-perturbing, and the span/FF
    counters agree with what actually happened."""

    def test_span_unperturbed_by_telemetry(self):
        from repro.obs.telemetry import TelemetryConfig

        spec = RunSpec(exp_id=4, policy="Adapt3D", duration_s=6.0, seed=3)
        plain = run_fidelity(spec, "span")
        telem = run_fidelity(spec, "span",
                             telemetry=TelemetryConfig(trace=True))
        np.testing.assert_array_equal(plain.vf_indices, telem.vf_indices)
        np.testing.assert_array_equal(plain.core_states, telem.core_states)
        np.testing.assert_array_equal(plain.unit_temps_k, telem.unit_temps_k)
        assert plain.energy_j == telem.energy_j
        assert telem.telemetry is not None

    def test_counters_match_result_and_eager(self):
        from repro.obs.telemetry import TelemetryConfig

        spec = RunSpec(exp_id=1, policy="Default", duration_s=10.0, seed=5,
                       benchmark_mix=QUIET_MIX)
        eager = run_fidelity(spec, "eager",
                             telemetry=TelemetryConfig())
        span = run_fidelity(spec, "span",
                            telemetry=TelemetryConfig())
        for result in (eager, span):
            stats = result.telemetry["job_stats"]
            assert stats["completions"] == len(result.completed_jobs())
            assert stats["migrations"] == result.migrations
        assert (eager.telemetry["job_stats"]["completions"]
                == span.telemetry["job_stats"]["completions"])

    def test_fast_forward_counters(self, monkeypatch):
        from repro.obs.telemetry import TelemetryConfig

        calls = count_fast_forwards(monkeypatch)
        spec = RunSpec(exp_id=2, policy="Default", duration_s=30.0, seed=5,
                       benchmark_mix=QUIET_MIX)
        result = run_fidelity(spec, "span",
                              telemetry=TelemetryConfig())
        counters = result.telemetry["engine"]["counters"]
        assert counters["fast_forward_spans"] == calls["spans"] > 0
        assert counters["fast_forward_ticks"] == calls["ticks"]
        # A^k propagator cache serves the jumps: every span consults it.
        assert (counters["propagator_cache_hits"]
                + counters["propagator_cache_misses"]) >= calls["spans"]
        # Registry mirrors of the micro counters agree.
        reg = result.telemetry["registry"]["counters"]
        assert reg["span.fast_forwards"] == calls["spans"]
        assert reg["span.fast_forward_ticks"] == calls["ticks"]
        # Profiler credits the fast-forwarded ticks too.
        phases = result.telemetry["phases"]
        assert phases["ticks"] == result.n_ticks
        assert "fast_forward" in phases["phases"]

    def test_span_close_counter(self):
        from repro.obs.telemetry import TelemetryConfig

        spec = RunSpec(exp_id=4, policy="Adapt3D", duration_s=6.0, seed=3)
        result = run_fidelity(spec, "span",
                              telemetry=TelemetryConfig())
        counters = result.telemetry["engine"]["counters"]
        assert counters["span_touch"] >= 0
        assert counters["span_close"] > 0
        assert result.telemetry["registry"]["counters"]["span.closes"] == (
            counters["span_close"]
        )


class TestSpanConfigValidation:
    def test_unknown_fidelity_rejected(self):
        engine = RUNNER.build_engine(
            RunSpec(exp_id=1, policy="Default", duration_s=2.0)
        )
        engine.config = replace(engine.config, fidelity="sloppy")
        with pytest.raises(SchedulerError):
            engine.run()

    def test_span_requires_event_heap(self):
        engine = RUNNER.build_engine(
            RunSpec(exp_id=1, policy="Default", duration_s=2.0)
        )
        engine.config = replace(
            engine.config, fidelity="span", event_loop="legacy_scan"
        )
        with pytest.raises(SchedulerError):
            engine.run()

    def test_batch_rejects_mixed_fidelity(self):
        spec = RunSpec(exp_id=1, policy="Default", duration_s=2.0)
        eager_lane = RUNNER.build_engine(spec)
        span_lane = RUNNER.build_engine(replace(spec, seed=2))
        span_lane.config = replace(span_lane.config, fidelity="span")
        with pytest.raises(SchedulerError):
            BatchSimulationEngine([eager_lane, span_lane])

    def test_batch_group_key_separates_fidelity(self):
        eager = RunSpec(exp_id=1, policy="Default", duration_s=2.0)
        span = replace(eager, fidelity="span")
        groups = ExperimentRunner.group_batchable([eager, span])
        assert groups == [[0], [1]]


class TestSpanBatch:
    """Batched span lanes against serial eager references."""

    def seed_sweep(self, policy, n_seeds=3, **overrides):
        return [
            RunSpec(exp_id=4, policy=policy, duration_s=6.0,
                    seed=2009 + i, fidelity="span", **overrides)
            for i in range(n_seeds)
        ]

    @pytest.mark.parametrize("propagation", ["exact", "gemm"])
    def test_batch_span_matches_serial_eager(self, propagation):
        specs = self.seed_sweep("Adapt3D")
        lanes = [RUNNER.build_engine(spec) for spec in specs]
        batched = BatchSimulationEngine(lanes, propagation=propagation).run()
        for spec, result in zip(specs, batched):
            eager = RUNNER.run(replace(spec, fidelity="eager"))
            assert_span_close(eager, result)

    def test_batch_span_matches_serial_span(self):
        """The across-lane probability tick must evolve each lane
        exactly as its own on_tick would."""
        specs = self.seed_sweep("Adapt3D")
        lanes = [RUNNER.build_engine(spec) for spec in specs]
        batched = BatchSimulationEngine(lanes, propagation="exact").run()
        for spec, result in zip(specs, batched):
            serial = RUNNER.run(spec)
            for name in DISCRETE_ARRAYS:
                np.testing.assert_array_equal(
                    getattr(serial, name), getattr(result, name),
                    err_msg=name,
                )
            np.testing.assert_allclose(
                serial.unit_temps_k, result.unit_temps_k,
                rtol=0.0, atol=1e-9,
            )

    def test_batch_span_mixed_policies_fall_back(self):
        """Non-probabilistic lanes keep the per-lane policy sweep."""
        specs = [
            RunSpec(exp_id=4, policy=policy, duration_s=6.0, seed=2009,
                    fidelity="span")
            for policy in ("Default", "Adapt3D", "DVFS_TT")
        ]
        lanes = [RUNNER.build_engine(spec) for spec in specs]
        assert _ProbabilisticBatchTick.build(lanes) is None
        batched = BatchSimulationEngine(lanes).run()
        for spec, result in zip(specs, batched):
            assert_span_close(
                RUNNER.run(replace(spec, fidelity="eager")), result
            )

    def test_batch_span_with_dpm_and_noise(self):
        specs = self.seed_sweep("Adapt3D", with_dpm=True,
                                sensor_noise_sigma=0.5)
        lanes = [RUNNER.build_engine(spec) for spec in specs]
        batched = BatchSimulationEngine(lanes).run()
        for spec, result in zip(specs, batched):
            assert_span_close(
                RUNNER.run(replace(spec, fidelity="eager")), result
            )


class TestDVFSBatch:
    """The stacked DVFS policy tick: each lane's levels, migrations and
    heap invalidations must match its own serial on_tick sweep."""

    #: Enough load to exercise the base load-balancer's migrations and
    #: DVFS_Util's level churn inside the batch tick.
    BUSY_MIX = (("Web-high", 4), ("gcc", 3), ("Database", 2))

    def seed_sweep(self, policy, fidelity="span", n_seeds=3):
        return [
            RunSpec(exp_id=1, policy=policy, duration_s=8.0,
                    seed=7 + i, benchmark_mix=self.BUSY_MIX,
                    fidelity=fidelity, with_dpm=(i == 2))
            for i in range(n_seeds)
        ]

    @pytest.mark.parametrize("policy", ["DVFS_TT", "DVFS_Util", "DVFS_FLP"])
    def test_batch_dvfs_matches_serial(self, policy):
        specs = self.seed_sweep(policy)
        serial = [RUNNER.run(spec) for spec in specs]
        lanes = [RUNNER.build_engine(spec) for spec in specs]
        assert _DVFSBatchTick.build(lanes) is not None
        batched = BatchSimulationEngine(lanes, propagation="exact").run()
        for s, b in zip(serial, batched):
            for name in DISCRETE_ARRAYS + ("times",):
                np.testing.assert_array_equal(
                    getattr(s, name), getattr(b, name), err_msg=name
                )
            np.testing.assert_allclose(
                s.unit_temps_k, b.unit_temps_k, rtol=0.0, atol=1e-9
            )
            assert s.migrations == b.migrations
            for js, jb in zip(s.jobs, b.jobs):
                assert js.core == jb.core

    def test_batch_dvfs_event_lanes(self):
        """Event-fidelity lanes batch on the span substrate and take
        the stacked DVFS tick too."""
        specs = self.seed_sweep("DVFS_Util", fidelity="event")
        serial = [RUNNER.run(spec) for spec in specs]
        lanes = [RUNNER.build_engine(spec) for spec in specs]
        assert _DVFSBatchTick.build(lanes) is not None
        batched = BatchSimulationEngine(lanes, propagation="exact").run()
        for s, b in zip(serial, batched):
            for name in DISCRETE_ARRAYS:
                np.testing.assert_array_equal(
                    getattr(s, name), getattr(b, name), err_msg=name
                )
            assert s.migrations == b.migrations

    def test_mixed_dvfs_policies_fall_back(self):
        """Different DVFS classes across lanes keep the per-lane sweep
        (and hybrids never take the stacked tick)."""
        specs = [
            RunSpec(exp_id=1, policy=policy, duration_s=4.0, seed=7,
                    fidelity="span")
            for policy in ("DVFS_TT", "DVFS_Util")
        ]
        lanes = [RUNNER.build_engine(spec) for spec in specs]
        assert _DVFSBatchTick.build(lanes) is None
        hybrid = [
            RUNNER.build_engine(
                RunSpec(exp_id=1, policy="Adapt3D&DVFS_TT", duration_s=4.0,
                        seed=7, fidelity="span")
            )
        ]
        assert _DVFSBatchTick.build(hybrid) is None

    def test_tt_level_math_matches_policy(self):
        """The vectorized DVFS_TT update against the per-core dict
        walk, including the step-down branch the thermal runs rarely
        reach and clamping at both table ends."""
        lanes = [
            RUNNER.build_engine(
                RunSpec(exp_id=1, policy="DVFS_TT", duration_s=2.0,
                        seed=7 + i, fidelity="span")
            )
            for i in range(2)
        ]
        tick = _DVFSBatchTick.build(lanes)
        assert tick is not None
        policies = [lane.policy for lane in lanes]
        table = policies[0].system.vf_table
        names = list(policies[0].system.core_names)
        threshold = policies[0].system.thermal_threshold_k
        shadow = [dict(policy._levels) for policy in policies]
        rng = np.random.default_rng(3)
        for _ in range(6):  # enough rounds to pin at both clamps
            temps = rng.uniform(threshold - 10.0, threshold + 10.0,
                                (len(lanes), len(names)))
            levels = tick.advance_levels(temps, np.zeros_like(temps))
            for r, expect in enumerate(shadow):
                for j, name in enumerate(names):
                    if temps[r, j] >= threshold:
                        expect[name] = table.step_down(expect[name])
                    else:
                        expect[name] = table.step_up(expect[name])
                    assert levels[r, j] == expect[name]
        tick.finish()
        for policy, expect in zip(policies, shadow):
            assert policy._levels == expect

    def test_util_level_math_matches_policy(self):
        """The vectorized lowest_covering against the scalar table
        walk over the closed [0, 1] utilization range."""
        lanes = [
            RUNNER.build_engine(
                RunSpec(exp_id=1, policy="DVFS_Util", duration_s=2.0,
                        seed=7, fidelity="span")
            )
        ]
        tick = _DVFSBatchTick.build(lanes)
        assert tick is not None
        table = lanes[0].policy.system.vf_table
        n = len(lanes[0].policy.system.core_names)
        rng = np.random.default_rng(9)
        rounds = [rng.uniform(0.0, 1.0, (1, n)) for _ in range(4)]
        for level in table._levels:  # exact frequency ties
            rounds.append(np.full((1, n), level.frequency))
        rounds.append(np.zeros((1, n)))
        rounds.append(np.ones((1, n)))
        for utils in rounds:
            levels = tick.advance_levels(np.zeros((1, n)), utils)
            for j in range(n):
                assert levels[0, j] == table.lowest_covering(
                    float(utils[0, j])
                )


class TestSpanThermalPrimitives:
    """Multi-interval propagator cache and span-compiled readback."""

    @pytest.fixture(scope="class")
    def model(self):
        return ThermalModel(build_experiment(2))

    def _settled_state(self, model):
        model.initialize_steady_state(
            {name: 0.4 for name in model.unit_names}
        )

    def test_propagator_power_caches_matrix_powers(self, model):
        solver = model.assembly.transient_solver("exponential")
        base = solver.propagator_power(1)
        assert base is solver.propagator
        squared = solver.propagator_power(2)
        np.testing.assert_allclose(squared, base @ base, atol=1e-15)
        assert solver.propagator_power(2) is squared  # cached
        with pytest.raises(ThermalModelError):
            solver.propagator_power(0)

    def test_propagator_power_requires_exponential(self, model):
        solver = model.assembly.transient_solver("backward_euler")
        with pytest.raises(ThermalModelError):
            solver.propagator_power(2)

    def test_step_vector_multi_matches_sequential(self, model):
        self._settled_state(model)
        rng = np.random.default_rng(7)
        powers = rng.uniform(0.1, 2.0, len(model.unit_names))
        reference = ThermalModel(model.config, assembly=model.assembly)
        reference.temperatures = model.temperatures.copy()
        for _ in range(5):
            reference.step_vector(powers)
        model.step_vector_multi(powers, 5)
        np.testing.assert_allclose(
            model.temperatures, reference.temperatures,
            rtol=0.0, atol=1e-9,
        )

    def test_span_cursor_rows_match_sequential_readbacks(self, model):
        self._settled_state(model)
        rng = np.random.default_rng(11)
        powers = rng.uniform(0.1, 2.0, len(model.unit_names))
        reference = ThermalModel(model.config, assembly=model.assembly)
        reference.temperatures = model.temperatures.copy()
        cursor = model.span_cursor(powers, 4)
        assert cursor is not None
        for i in range(1, 5):
            reference.step_vector(powers)
            mean_row, max_row = cursor.rows(i)
            np.testing.assert_allclose(
                mean_row, reference.unit_temperature_vector(),
                rtol=0.0, atol=1e-9,
            )
            np.testing.assert_allclose(
                max_row, reference.unit_max_vector(),
                rtol=0.0, atol=1e-9,
            )
        cursor.finish(4)
        np.testing.assert_allclose(
            model.temperatures, reference.temperatures,
            rtol=0.0, atol=1e-9,
        )

    def test_span_cursor_interval_bounds(self, model):
        powers = np.full(len(model.unit_names), 0.5)
        cursor = model.span_cursor(powers, 3)
        with pytest.raises(ThermalModelError):
            cursor.rows(0)
        with pytest.raises(ThermalModelError):
            cursor.rows(4)

    def test_implicit_model_has_no_cursor(self):
        model = ThermalModel(
            build_experiment(1), solver_method="backward_euler"
        )
        powers = np.full(len(model.unit_names), 0.5)
        assert model.span_cursor(powers, 4) is None


@pytest.mark.slow
class TestSpanDifferentialMatrix:
    """Full stack x policy x DPM span-vs-eager matrix (weekly in CI)."""

    @pytest.mark.parametrize("exp_id", [1, 2, 3, 4])
    @pytest.mark.parametrize("policy", [
        "Default", "AdaptRand", "Adapt3D", "Migr", "DVFS_TT",
        "Adapt3D&DVFS_TT",
    ])
    @pytest.mark.parametrize("with_dpm", [False, True])
    def test_span_matches_eager(self, exp_id, policy, with_dpm):
        spec = RunSpec(exp_id=exp_id, policy=policy, duration_s=6.0,
                       with_dpm=with_dpm, seed=2009)
        assert_span_close(
            run_fidelity(spec, "eager"), run_fidelity(spec, "span")
        )

    @pytest.mark.parametrize("policy", ["Default", "Adapt3D", "DVFS_TT"])
    def test_quiet_span_matrix(self, policy):
        spec = RunSpec(exp_id=2, policy=policy, duration_s=30.0, seed=5,
                       with_dpm=True, benchmark_mix=QUIET_MIX)
        assert_span_close(
            run_fidelity(spec, "eager"), run_fidelity(spec, "span")
        )
