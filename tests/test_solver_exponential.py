"""Exponential-propagator solver tests.

Four families:

- accuracy: the exponential step is exact for piecewise-constant power,
  so it must track a fine-substep Crank-Nicolson reference within the
  accuracy budget (0.01 K) across all four paper stacks — both under
  randomized power steps (fast slice) and under the power trace of a
  full 120 s engine workload (slow marker);
- caching: the ``expm`` build is paid once per :class:`ThermalAssembly`
  and reused by every model/run sharing it;
- the dense-propagator guard: oversized networks resolve to the
  implicit fallback;
- config plumbing: ``EngineConfig``/``RunSpec`` select the integrator,
  unknown names are rejected.
"""

from dataclasses import replace

import numpy as np
import pytest

import repro.thermal.solver as solver_mod
from repro.analysis.runner import ExperimentRunner, RunSpec
from repro.errors import SchedulerError, ThermalModelError
from repro.floorplan.experiments import build_experiment
from repro.thermal.materials import AMBIENT_K
from repro.thermal.model import ThermalModel
from repro.thermal.network import build_network
from repro.thermal.solver import TransientSolver, build_propagator
from repro.thermal.stack import build_stack

ACCURACY_BUDGET_K = 0.01
REFERENCE_SUBSTEPS = 64


def _reference_pair(network):
    exact = TransientSolver(network, dt=0.1, method="exponential")
    reference = TransientSolver(
        network, dt=0.1, substeps=REFERENCE_SUBSTEPS, method="crank_nicolson"
    )
    return exact, reference


def _run_trace(exact, reference, network, power_vectors, start):
    """Step both solvers through a power trace; max |ΔT| over all ticks."""
    t_exact = start.copy()
    t_ref = start.copy()
    worst = 0.0
    for powers in power_vectors:
        t_exact = exact.step(t_exact, powers)
        t_ref = reference.step(t_ref, powers)
        worst = max(worst, float(np.abs(t_exact - t_ref).max()))
    return worst


class TestAccuracyBudget:
    @pytest.mark.parametrize("exp_id", [1, 2, 3, 4])
    def test_tracks_crank_nicolson_under_random_power_steps(self, exp_id):
        """Randomized piecewise-constant power on the real 8x8 grids."""
        network = build_network(
            build_stack(build_experiment(exp_id)), 8, 8, AMBIENT_K
        )
        exact, reference = _reference_pair(network)
        rng = np.random.default_rng(exp_id)
        die_slice = network.layer_slice(2)
        powers = np.zeros(network.n_nodes)
        trace = []
        for _ in range(6):
            held = np.zeros(network.n_nodes)
            held[die_slice] = rng.uniform(
                0.0, 1.0, die_slice.stop - die_slice.start
            )
            # Hold each draw for a few intervals (the engine holds power
            # constant across each 100 ms tick).
            trace.extend([held] * 4)
        worst = _run_trace(
            exact, reference, network, trace,
            np.full(network.n_nodes, AMBIENT_K),
        )
        assert worst <= ACCURACY_BUDGET_K, (
            f"EXP-{exp_id}: exponential step drifted {worst:.4f} K from "
            f"CN/{REFERENCE_SUBSTEPS}"
        )

    @pytest.mark.parametrize("exp_id", [1, 2, 3, 4])
    @pytest.mark.slow
    def test_full_paper_workload_within_budget(self, exp_id):
        """Replay the power trace of a full 120 s Adapt3D run and bound
        the exponential-vs-CN64 temperature divergence (the acceptance
        budget of the solver swap)."""
        runner = ExperimentRunner()
        engine = runner.build_engine(
            RunSpec(
                exp_id=exp_id, policy="Adapt3D", duration_s=120.0, seed=2009
            )
        )
        thermal = engine.thermal
        captured = []
        original = thermal.step_vector

        def capture(vec):
            captured.append(thermal.node_powers_from_vector(vec))
            return original(vec)

        thermal.step_vector = capture
        engine._initialize_thermal_state()
        start = thermal.temperatures.copy()
        engine.run()
        assert len(captured) == 1200
        exact, reference = _reference_pair(thermal.network)
        worst = _run_trace(exact, reference, thermal.network, captured, start)
        assert worst <= ACCURACY_BUDGET_K, (
            f"EXP-{exp_id}: exponential step drifted {worst:.4f} K from "
            f"CN/{REFERENCE_SUBSTEPS} over the 120 s workload"
        )

    def test_engine_temperatures_match_across_solvers(self):
        """End-to-end: recorded temperatures of exponential vs implicit
        runs stay within tenths of a kelvin (they solve the same ODE)."""
        runner = ExperimentRunner()
        spec = RunSpec(exp_id=1, policy="Default", duration_s=10.0, seed=7)
        exact = runner.run(spec)
        implicit = runner.run(replace(spec, thermal_solver="crank_nicolson"))
        assert np.abs(exact.unit_temps_k - implicit.unit_temps_k).max() < 0.5


class TestPropagatorCaching:
    def _counting_expm(self, monkeypatch):
        calls = []
        original = solver_mod.expm

        def counted(matrix):
            calls.append(matrix.shape)
            return original(matrix)

        monkeypatch.setattr(solver_mod, "expm", counted)
        return calls

    def test_assembly_reuse_skips_expm(self, monkeypatch):
        calls = self._counting_expm(monkeypatch)
        config = build_experiment(1)
        first = ThermalModel(config, nrows=4, ncols=4)
        assert len(calls) == 1
        again = ThermalModel(config, nrows=4, ncols=4,
                             assembly=first.assembly)
        assert len(calls) == 1, "cached assembly rebuilt the propagator"
        # Switching solvers back and forth must not rebuild either.
        again.use_solver("backward_euler")
        again.use_solver("exponential")
        assert len(calls) == 1

    def test_runner_cache_shares_propagator_across_runs(self, monkeypatch):
        calls = self._counting_expm(monkeypatch)
        runner = ExperimentRunner()
        spec = RunSpec(exp_id=1, policy="Default", duration_s=1.0)
        runner.run(spec)
        runner.run(replace(spec, seed=3))
        assert len(calls) == 1

    def test_implicit_runs_never_build_propagator(self, monkeypatch):
        calls = self._counting_expm(monkeypatch)
        runner = ExperimentRunner()
        runner.run(
            RunSpec(
                exp_id=1, policy="Default", duration_s=1.0,
                thermal_solver="backward_euler",
            )
        )
        assert calls == []


class TestDensePropagatorGuard:
    def test_oversized_network_falls_back_to_implicit(self):
        network = build_network(
            build_stack(build_experiment(1)), 4, 4, AMBIENT_K
        )
        solver = TransientSolver(
            network, dt=0.1, method="exponential", dense_node_limit=10
        )
        assert solver.method == "exponential"
        assert solver.resolved_method == "backward_euler"
        assert solver.propagator is None
        # The fallback still integrates correctly.
        implicit = TransientSolver(network, dt=0.1, method="backward_euler")
        powers = np.zeros(network.n_nodes)
        start = np.full(network.n_nodes, AMBIENT_K + 5.0)
        np.testing.assert_array_equal(
            solver.step(start, powers), implicit.step(start, powers)
        )

    def test_paper_grids_stay_dense(self):
        network = build_network(
            build_stack(build_experiment(4)), 8, 8, AMBIENT_K
        )
        solver = TransientSolver(network, dt=0.1, method="exponential")
        assert solver.resolved_method == "exponential"
        assert solver.propagator.shape == (network.n_nodes, network.n_nodes)

    def test_propagator_is_stable(self):
        """The continuous system is dissipative, so the propagator's
        spectral radius must stay below 1 (no energy injected by the
        integrator)."""
        network = build_network(
            build_stack(build_experiment(1)), 4, 4, AMBIENT_K
        )
        propagator = build_propagator(network, 0.1)
        radius = np.abs(np.linalg.eigvals(propagator)).max()
        assert radius < 1.0


class TestConfigPlumbing:
    def test_unknown_solver_rejected_by_engine(self):
        runner = ExperimentRunner()
        engine = runner.build_engine(
            RunSpec(exp_id=1, policy="Default", duration_s=1.0)
        )
        engine.config = replace(engine.config, thermal_solver="rk4")
        with pytest.raises(SchedulerError):
            engine.run()

    def test_unknown_solver_rejected_by_model(self):
        model = ThermalModel(build_experiment(1), nrows=4, ncols=4)
        with pytest.raises(ThermalModelError):
            model.use_solver("rk4")

    def test_default_is_exponential(self):
        from repro.sched.engine import EngineConfig

        assert EngineConfig().thermal_solver == "exponential"
        assert RunSpec(exp_id=1, policy="Default").thermal_solver == "exponential"
        model = ThermalModel(build_experiment(1), nrows=4, ncols=4)
        assert model.solver_method == "exponential"

    @pytest.mark.parametrize(
        "method", ["exponential", "backward_euler", "crank_nicolson"]
    )
    def test_engine_config_selects_solver(self, method):
        runner = ExperimentRunner()
        engine = runner.build_engine(
            RunSpec(exp_id=1, policy="Default", duration_s=1.0)
        )
        engine.config = replace(engine.config, thermal_solver=method)
        engine.run()
        assert engine.thermal.solver_method == method
