"""Table I benchmark data tests."""

import pytest

from repro.errors import WorkloadError
from repro.workload.benchmarks import (
    BENCHMARKS,
    BenchmarkSpec,
    benchmark,
    benchmark_names,
    default_server_mix,
)

# The paper's Table I rows: (name, util %, I-miss, D-miss, FP).
TABLE_I = [
    ("Web-med", 53.12, 12.9, 167.7, 31.2),
    ("Web-high", 92.87, 67.6, 288.7, 31.2),
    ("Database", 17.75, 6.5, 102.3, 5.9),
    ("Web&DB", 75.12, 21.5, 115.3, 24.1),
    ("gcc", 15.25, 31.7, 96.2, 18.1),
    ("gzip", 9.0, 2.0, 57.0, 0.2),
    ("MPlayer", 6.5, 9.6, 136.0, 1.0),
    ("MPlayer&Web", 26.62, 9.1, 66.8, 29.9),
]


class TestTableI:
    def test_all_eight_benchmarks_present(self):
        assert benchmark_names() == [row[0] for row in TABLE_I]

    @pytest.mark.parametrize("name,util,imiss,dmiss,fp", TABLE_I)
    def test_published_statistics(self, name, util, imiss, dmiss, fp):
        spec = benchmark(name)
        assert spec.avg_util_pct == pytest.approx(util)
        assert spec.l2_imiss == pytest.approx(imiss)
        assert spec.l2_dmiss == pytest.approx(dmiss)
        assert spec.fp_per_100k == pytest.approx(fp)

    def test_web_high_is_most_memory_intensive(self):
        intensities = {n: benchmark(n).memory_intensity for n in benchmark_names()}
        assert max(intensities, key=intensities.get) == "Web-high"
        assert intensities["Web-high"] == pytest.approx(1.0)

    def test_unknown_benchmark_raises(self):
        with pytest.raises(WorkloadError):
            benchmark("nope")


class TestDerivedParameters:
    def test_think_time_matches_utilization(self):
        for name in benchmark_names():
            spec = benchmark(name)
            implied = spec.mean_busy_s / (spec.mean_busy_s + spec.mean_think_s)
            assert implied == pytest.approx(spec.utilization)

    def test_validation_rejects_bad_util(self):
        with pytest.raises(WorkloadError):
            BenchmarkSpec("bad", 0.0, 1, 1, 1, 0.5, 0.5)

    def test_validation_rejects_bad_burstiness(self):
        with pytest.raises(WorkloadError):
            BenchmarkSpec("bad", 50.0, 1, 1, 1, 1.5, 0.5)


class TestServerMix:
    def test_thread_count_exact(self):
        for n in (4, 8, 16, 23):
            mix = default_server_mix(n)
            assert sum(count for _, count in mix) == n

    def test_dominated_by_web_workloads(self):
        mix = default_server_mix(16)
        counts = {spec.name: count for spec, count in mix}
        assert counts["Web-high"] >= max(counts.values()) - 1

    def test_rejects_zero_threads(self):
        with pytest.raises(WorkloadError):
            default_server_mix(0)
