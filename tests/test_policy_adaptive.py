"""AdaptRand / Adapt3D probability-update tests (paper §III-B)."""

import pytest

from repro.core.adapt3d import Adapt3D
from repro.core.adaptive_random import AdaptiveRandom
from repro.core.hybrid import HybridPolicy
from repro.core.dvfs_tt import DVFSTemperatureTriggered
from repro.errors import PolicyError
from repro.power.states import CoreState

from tests.conftest import make_alloc, make_system_view, make_test_job, make_tick

COOL = {"c0": 60.0, "c1": 62.0, "c2": 61.0, "c3": 59.0}


def attach(policy, n_cores=4):
    policy.attach(make_system_view(n_cores))
    return policy


class TestProbabilityUpdate:
    def test_initial_probabilities_uniform(self):
        policy = attach(Adapt3D())
        probs = policy.probabilities
        assert all(p == pytest.approx(0.25) for p in probs.values())

    def test_probabilities_stay_normalized(self):
        policy = attach(Adapt3D())
        for temp in (COOL, {"c0": 82.0, "c1": 70.0, "c2": 65.0, "c3": 60.0}):
            policy.on_tick(make_tick(temp))
            assert sum(policy.probabilities.values()) == pytest.approx(1.0)

    def test_hot_core_probability_zeroed(self):
        policy = attach(Adapt3D())
        policy.on_tick(make_tick({"c0": 86.0, "c1": 62.0, "c2": 61.0, "c3": 59.0}))
        assert policy.probabilities["c0"] == 0.0

    def test_warm_core_loses_probability(self):
        """A core above T_pref (80 C) must lose probability relative to
        cool cores (beta_dec branch)."""
        policy = attach(Adapt3D())
        for _ in range(5):
            policy.on_tick(make_tick({"c0": 83.0, "c1": 60.0, "c2": 60.0, "c3": 60.0}))
        probs = policy.probabilities
        assert probs["c0"] < probs["c1"]

    def test_alpha_slows_increase_for_susceptible_cores(self):
        """At equal temperatures, low-alpha (sink-adjacent) cores gain
        probability faster than high-alpha cores."""
        policy = attach(Adapt3D())
        for _ in range(10):
            policy.on_tick(make_tick({n: 60.0 for n in COOL}))
        probs = policy.probabilities
        # c0/c2 are layer 0 (alpha 0.2), c1/c3 layer 1 (alpha 0.8).
        assert probs["c0"] > probs["c1"]
        assert probs["c2"] > probs["c3"]

    def test_adaptive_random_is_layer_blind(self):
        policy = attach(AdaptiveRandom())
        for _ in range(10):
            policy.on_tick(make_tick({n: 60.0 for n in COOL}))
        probs = policy.probabilities
        assert probs["c0"] == pytest.approx(probs["c1"])

    def test_history_window_respected(self):
        policy = attach(Adapt3D(history_window=3))
        hot = {"c0": 86.0, "c1": 60.0, "c2": 60.0, "c3": 60.0}
        policy.on_tick(make_tick(hot))
        # After 3 cool ticks the hot sample leaves the window.
        for _ in range(4):
            policy.on_tick(make_tick(COOL))
        assert policy.probabilities["c0"] > 0.0

    def test_invalid_constructor_args(self):
        with pytest.raises(PolicyError):
            Adapt3D(beta_inc=0.0)
        with pytest.raises(PolicyError):
            Adapt3D(history_window=0)

    def test_adapt3d_requires_indices(self):
        from repro.core.base import SystemView
        from repro.power.vf import DEFAULT_VF_TABLE

        bare = SystemView(
            core_names=("c0",),
            core_layer={"c0": 0},
            n_layers=1,
            vf_table=DEFAULT_VF_TABLE,
        )
        with pytest.raises(PolicyError):
            Adapt3D().attach(bare)


class TestAllocation:
    def test_draws_only_among_shortest_queues(self):
        policy = attach(Adapt3D())
        ctx = make_alloc(COOL, queues={"c0": 0, "c1": 2, "c2": 2, "c3": 2})
        for _ in range(20):
            assert policy.select_core(make_test_job(), ctx) == "c0"

    def test_prefers_awake_cores(self):
        policy = attach(Adapt3D())
        ctx = make_alloc(
            COOL,
            states={"c0": CoreState.SLEEP, "c2": CoreState.SLEEP},
        )
        for _ in range(20):
            assert policy.select_core(make_test_job(), ctx) in ("c1", "c3")

    def test_falls_back_to_coolest_when_all_hot(self):
        policy = attach(Adapt3D())
        hot = {"c0": 86.0, "c1": 88.0, "c2": 87.0, "c3": 90.0}
        policy.on_tick(make_tick(hot))
        ctx = make_alloc(hot)
        assert policy.select_core(make_test_job(), ctx) == "c0"

    def test_biased_toward_low_alpha_cores(self):
        """With equal temps and queues, layer-0 cores receive more jobs."""
        policy = attach(Adapt3D())
        for _ in range(10):
            policy.on_tick(make_tick({n: 60.0 for n in COOL}))
        counts = {name: 0 for name in COOL}
        ctx = make_alloc(COOL)
        for _ in range(2000):
            counts[policy.select_core(make_test_job(), ctx)] += 1
        lower = counts["c0"] + counts["c2"]
        upper = counts["c1"] + counts["c3"]
        assert lower > upper


class TestHybrid:
    def test_name_combines(self):
        hybrid = HybridPolicy(Adapt3D(), DVFSTemperatureTriggered())
        assert hybrid.name == "Adapt3D&DVFS_TT"

    def test_allocation_from_allocator_vf_from_dvfs(self):
        hybrid = attach(HybridPolicy(Adapt3D(), DVFSTemperatureTriggered()))
        hot = {"c0": 88.0, "c1": 60.0, "c2": 60.0, "c3": 60.0}
        actions = hybrid.on_tick(make_tick(hot))
        assert actions.vf_settings["c0"] == 1  # DVFS_TT stepped down
        assert hybrid.allocator.probabilities["c0"] == 0.0  # Adapt3D updated

    def test_dvfs_rebalance_migrations_dropped(self):
        hybrid = attach(HybridPolicy(Adapt3D(), DVFSTemperatureTriggered()))
        ctx = make_tick(COOL, queues={"c0": 5, "c1": 0, "c2": 0, "c3": 0})
        actions = hybrid.on_tick(ctx)
        assert actions.migrations == []
