"""Floorplan container tests."""

import pytest

from repro.errors import FloorplanError
from repro.floorplan.floorplan import Floorplan
from repro.floorplan.unit import Unit, UnitKind


def two_unit_plan():
    return Floorplan(
        2.0,
        1.0,
        [
            Unit("left", 0.0, 0.0, 1.0, 1.0, UnitKind.CORE),
            Unit("right", 1.0, 0.0, 1.0, 1.0, UnitKind.CACHE),
        ],
        name="pair",
    )


class TestValidation:
    def test_rejects_zero_die(self):
        with pytest.raises(FloorplanError):
            Floorplan(0.0, 1.0, [])

    def test_rejects_duplicate_names(self):
        with pytest.raises(FloorplanError):
            Floorplan(2.0, 1.0, [Unit("u", 0, 0, 1, 1), Unit("u", 1, 0, 1, 1)])

    def test_rejects_out_of_bounds(self):
        with pytest.raises(FloorplanError):
            Floorplan(1.0, 1.0, [Unit("u", 0.5, 0.0, 1.0, 1.0)])

    def test_rejects_overlap(self):
        with pytest.raises(FloorplanError):
            Floorplan(
                2.0, 1.0,
                [Unit("a", 0, 0, 1.2, 1.0), Unit("b", 1.0, 0.0, 1.0, 1.0)],
            )

    def test_coverage_passes_for_exact_tiling(self):
        two_unit_plan().validate_coverage()

    def test_coverage_fails_with_gap(self):
        plan = Floorplan(2.0, 1.0, [Unit("a", 0, 0, 1.0, 1.0)])
        with pytest.raises(FloorplanError):
            plan.validate_coverage()


class TestAccessors:
    def test_len_and_iteration(self):
        plan = two_unit_plan()
        assert len(plan) == 2
        assert [u.name for u in plan] == ["left", "right"]

    def test_getitem(self):
        assert two_unit_plan()["left"].kind is UnitKind.CORE

    def test_getitem_unknown_raises(self):
        with pytest.raises(FloorplanError):
            two_unit_plan()["nope"]

    def test_contains(self):
        plan = two_unit_plan()
        assert "left" in plan
        assert "nope" not in plan

    def test_units_of_kind(self):
        plan = two_unit_plan()
        assert [u.name for u in plan.cores()] == ["left"]
        assert [u.name for u in plan.units_of_kind(UnitKind.CACHE)] == ["right"]

    def test_unit_at(self):
        plan = two_unit_plan()
        assert plan.unit_at(0.5, 0.5).name == "left"
        assert plan.unit_at(1.5, 0.5).name == "right"

    def test_area(self):
        assert two_unit_plan().area == pytest.approx(2.0)


class TestMirroring:
    def test_mirror_preserves_area_and_names(self):
        plan = two_unit_plan()
        mirrored = plan.mirrored_vertical()
        assert mirrored.unit_names() == plan.unit_names()
        assert mirrored.area == plan.area
        mirrored.validate_coverage()

    def test_mirror_flips_y(self):
        plan = Floorplan(
            1.0, 2.0,
            [Unit("lo", 0, 0, 1.0, 0.5), Unit("hi", 0, 0.5, 1.0, 1.5)],
        )
        mirrored = plan.mirrored_vertical()
        assert mirrored["lo"].y == pytest.approx(1.5)
        assert mirrored["hi"].y == pytest.approx(0.0)

    def test_double_mirror_is_identity(self):
        plan = two_unit_plan()
        twice = plan.mirrored_vertical().mirrored_vertical()
        for unit in plan:
            assert twice[unit.name].y == pytest.approx(unit.y)


class TestAscii:
    def test_ascii_dimensions(self):
        art = two_unit_plan().to_ascii(cols=10, rows=4)
        lines = art.splitlines()
        assert len(lines) == 4
        assert all(len(line) == 10 for line in lines)

    def test_ascii_symbols(self):
        art = two_unit_plan().to_ascii(cols=10, rows=4)
        assert "C" in art  # core
        assert "$" in art  # cache
