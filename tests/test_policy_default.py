"""Default load-balancing policy tests."""

import pytest

from repro.core.default import DefaultLoadBalancing
from repro.errors import PolicyError
from repro.power.states import CoreState

from tests.conftest import make_alloc, make_test_job, make_tick


@pytest.fixture
def policy(system4):
    policy = DefaultLoadBalancing()
    policy.attach(system4)
    return policy


TEMPS = {"c0": 60.0, "c1": 70.0, "c2": 65.0, "c3": 55.0}


class TestAllocation:
    def test_locality_rule(self, policy):
        ctx = make_alloc(TEMPS, last_core="c2")
        assert policy.select_core(make_test_job(), ctx) == "c2"

    def test_locality_abandoned_when_imbalanced(self, policy):
        ctx = make_alloc(TEMPS, queues={"c2": 3}, last_core="c2")
        assert policy.select_core(make_test_job(), ctx) != "c2"

    def test_least_loaded_without_history(self, policy):
        ctx = make_alloc(TEMPS, queues={"c0": 2, "c1": 1, "c2": 0, "c3": 3})
        assert policy.select_core(make_test_job(), ctx) == "c2"

    def test_ties_rotate_round_robin(self, policy):
        seen = set()
        for _ in range(4):
            ctx = make_alloc(TEMPS)
            seen.add(policy.select_core(make_test_job(), ctx))
        assert seen == {"c0", "c1", "c2", "c3"}

    def test_prefers_awake_on_ties(self, policy):
        ctx = make_alloc(
            TEMPS,
            states={"c0": CoreState.SLEEP, "c1": CoreState.SLEEP},
        )
        assert policy.select_core(make_test_job(), ctx) in ("c2", "c3")

    def test_unattached_policy_raises(self):
        policy = DefaultLoadBalancing()
        with pytest.raises(PolicyError):
            policy.select_core(make_test_job(), make_alloc(TEMPS))


class TestRebalancing:
    def test_migrates_on_significant_imbalance(self, policy):
        ctx = make_tick(TEMPS, queues={"c0": 4, "c1": 1, "c2": 1, "c3": 1})
        actions = policy.on_tick(ctx)
        assert len(actions.migrations) == 1
        migration = actions.migrations[0]
        assert migration.source == "c0"
        assert not migration.move_running
        assert not migration.swap

    def test_no_migration_when_balanced(self, policy):
        ctx = make_tick(TEMPS, queues={"c0": 1, "c1": 1, "c2": 1, "c3": 2})
        assert policy.on_tick(ctx).migrations == []

    def test_no_vf_or_gating(self, policy):
        ctx = make_tick(TEMPS)
        actions = policy.on_tick(ctx)
        assert actions.vf_settings == {}
        assert actions.gated == []
