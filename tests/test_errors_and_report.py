"""Exception hierarchy and MetricsReport tests."""

import pytest

from repro.analysis.runner import ExperimentRunner, RunSpec
from repro.errors import (
    ConfigurationError,
    FloorplanError,
    PolicyError,
    PowerModelError,
    ReproError,
    SchedulerError,
    ThermalModelError,
    WorkloadError,
)
from repro.metrics.report import summarize


class TestErrorHierarchy:
    @pytest.mark.parametrize("error", [
        FloorplanError, ThermalModelError, PowerModelError, WorkloadError,
        SchedulerError, PolicyError, ConfigurationError,
    ])
    def test_all_derive_from_repro_error(self, error):
        assert issubclass(error, ReproError)
        with pytest.raises(ReproError):
            raise error("boom")


class TestMetricsReport:
    @pytest.fixture(scope="class")
    def result(self):
        return ExperimentRunner().run(
            RunSpec(exp_id=1, policy="Default", duration_s=5.0)
        )

    def test_fields_populated(self, result):
        report = summarize(result)
        assert report.policy == "Default"
        assert 0.0 <= report.hot_spot_pct <= 100.0
        assert 0.0 <= report.gradient_pct <= 100.0
        assert report.mean_response_s > 0.0
        assert report.energy_j > 0.0
        assert report.avg_power_w > 0.0
        assert 40.0 < report.peak_temperature_c < 120.0

    def test_delay_none_without_baseline(self, result):
        assert summarize(result).normalized_delay is None

    def test_delay_one_against_itself(self, result):
        report = summarize(result, baseline=result)
        assert report.normalized_delay == pytest.approx(1.0)

    def test_frozen(self, result):
        report = summarize(result)
        with pytest.raises(AttributeError):
            report.policy = "other"
