"""V/f table tests (paper: 3 settings — 100%, 95%, 85%)."""

import pytest

from repro.errors import PowerModelError
from repro.power.vf import DEFAULT_VF_TABLE, VFLevel, VFTable


class TestVFLevel:
    def test_dynamic_scale_is_f_v_squared(self):
        level = VFLevel(frequency=0.85, voltage=0.85)
        assert level.dynamic_scale == pytest.approx(0.85 ** 3)

    def test_nominal_scale_is_one(self):
        assert VFLevel(1.0, 1.0).dynamic_scale == pytest.approx(1.0)

    @pytest.mark.parametrize("f,v", [(0.0, 1.0), (1.0, 0.0), (1.2, 1.0), (1.0, 1.2)])
    def test_rejects_out_of_range(self, f, v):
        with pytest.raises(PowerModelError):
            VFLevel(f, v)

    def test_leakage_voltage_scale(self):
        level = VFLevel(0.85, 0.85)
        assert level.leakage_voltage_scale == pytest.approx(0.85 ** 2)


class TestVFTable:
    def test_paper_default_has_three_levels(self):
        assert len(DEFAULT_VF_TABLE) == 3
        assert DEFAULT_VF_TABLE[0].frequency == pytest.approx(1.0)
        assert DEFAULT_VF_TABLE[1].frequency == pytest.approx(0.95)
        assert DEFAULT_VF_TABLE[2].frequency == pytest.approx(0.85)

    def test_step_down_clamps(self):
        table = DEFAULT_VF_TABLE
        assert table.step_down(0) == 1
        assert table.step_down(2) == 2

    def test_step_up_clamps(self):
        table = DEFAULT_VF_TABLE
        assert table.step_up(2) == 1
        assert table.step_up(0) == 0

    def test_lowest_covering(self):
        table = DEFAULT_VF_TABLE
        assert table.lowest_covering(0.2) == table.lowest_index
        assert table.lowest_covering(0.9) == 1
        assert table.lowest_covering(0.99) == 0
        assert table.lowest_covering(0.85) == table.lowest_index

    def test_lowest_covering_rejects_bad_utilization(self):
        with pytest.raises(PowerModelError):
            DEFAULT_VF_TABLE.lowest_covering(1.5)

    def test_requires_descending_order(self):
        with pytest.raises(PowerModelError):
            VFTable([VFLevel(0.85, 0.85), VFLevel(1.0, 1.0)])

    def test_rejects_empty(self):
        with pytest.raises(PowerModelError):
            VFTable([])

    def test_index_out_of_range(self):
        with pytest.raises(PowerModelError):
            DEFAULT_VF_TABLE[3]
