"""Engine micro-behavior tests: gating, wake latency, swap mechanics."""

import pytest

from repro.analysis.runner import ExperimentRunner, RunSpec
from repro.core.base import Migration, Policy, PolicyActions
from repro.workload.job import Job

RUNNER = ExperimentRunner()


class GateEverything(Policy):
    """Test policy: gate every core on every tick."""

    name = "GateEverything"

    def select_core(self, job, ctx):
        return self.system.core_names[0]

    def on_tick(self, ctx):
        return PolicyActions(gated=list(self.system.core_names))


class SwapFirstTwo(Policy):
    """Test policy: swap the head jobs of the first two cores each tick."""

    name = "SwapFirstTwo"

    def select_core(self, job, ctx):
        cores = self.system.core_names
        return cores[job.thread_id % 2]

    def on_tick(self, ctx):
        cores = self.system.core_names
        return PolicyActions(
            migrations=[Migration(cores[0], cores[1], move_running=True, swap=True)]
        )


def engine_with_policy(policy, duration=5.0, **spec_kwargs):
    spec = RunSpec(exp_id=1, policy="Default", duration_s=duration, **spec_kwargs)
    engine = RUNNER.build_engine(spec)
    engine.policy = policy
    engine.policy.attach(engine.system_view)
    return engine


class TestGating:
    def test_gated_cores_make_no_progress(self):
        engine = engine_with_policy(GateEverything())
        result = engine.run()
        # The first tick may execute (gating starts at the first tick
        # boundary); afterwards everything stalls.
        assert result.utilization[2:].sum() == pytest.approx(0.0)
        assert len(result.completed_jobs()) <= len(engine.core_names)

    def test_gated_power_below_idle_power(self):
        gated = engine_with_policy(GateEverything()).run()
        idle = RUNNER.run(
            RunSpec(exp_id=1, policy="Default", duration_s=5.0,
                    benchmark_mix=(("MPlayer", 1),))
        )
        assert gated.total_power_w[-1] < idle.total_power_w[-1]


class TestSwap:
    def test_swap_preserves_jobs(self):
        engine = engine_with_policy(SwapFirstTwo(), duration=10.0)
        result = engine.run()
        # No job may be lost or duplicated by the constant swapping.
        ids = [job.job_id for job in result.jobs]
        assert len(ids) == len(set(ids))
        assert len(result.completed_jobs()) > 0

    def test_swapped_jobs_accumulate_migrations(self):
        engine = engine_with_policy(SwapFirstTwo(), duration=10.0)
        result = engine.run()
        assert result.migrations > 0
        assert max(job.migrations for job in result.jobs) >= 1


class TestNonPreemptiveMigration:
    """move_running=False must never steal the running job."""

    def _engine(self):
        return RUNNER.build_engine(
            RunSpec(exp_id=1, policy="Default", duration_s=5.0)
        )

    @staticmethod
    def _job(job_id, work_s=2.0):
        from repro.workload.benchmarks import benchmark
        from repro.workload.job import Job

        return Job(
            job_id=job_id, thread_id=job_id, benchmark=benchmark("gcc"),
            arrival_time=0.0, work_s=work_s,
        )

    def test_single_job_queue_is_a_noop(self):
        engine = self._engine()
        src_name, dst_name = engine.core_names[0], engine.core_names[1]
        src = engine._cores[src_name]
        job = self._job(1)
        src.queue.push(job)
        engine._migrate(
            Migration(src_name, dst_name, move_running=False, swap=False), 0.0
        )
        # The policy asked not to preempt and only the running job is
        # queued: nothing moves, nothing is charged.
        assert src.queue.jobs() == [job]
        assert len(engine._cores[dst_name].queue) == 0
        assert engine._migration_count == 0
        assert job.migrations == 0
        assert src.stall_until == 0.0
        assert engine._cores[dst_name].stall_until == 0.0

    def test_waiting_job_still_migrates(self):
        engine = self._engine()
        src_name, dst_name = engine.core_names[0], engine.core_names[1]
        src, dst = engine._cores[src_name], engine._cores[dst_name]
        running, waiting = self._job(1), self._job(2)
        src.queue.push(running)
        src.queue.push(waiting)
        engine._migrate(
            Migration(src_name, dst_name, move_running=False, swap=False), 0.0
        )
        assert src.queue.jobs() == [running]
        assert dst.queue.jobs() == [waiting]
        assert engine._migration_count == 1
        assert waiting.migrations == 1
        assert running.migrations == 0


class TestWakeLatency:
    def test_wake_latency_costs_response_time(self):
        light = (("MPlayer", 8),)
        from repro.sched.dpm import FixedTimeoutDPM
        from repro.sched.engine import EngineConfig

        spec = RunSpec(exp_id=1, policy="Default", duration_s=30.0,
                       benchmark_mix=light, seed=5)
        fast = RUNNER.build_engine(spec)
        fast.config = EngineConfig(
            duration_s=30.0, dpm=FixedTimeoutDPM(wake_latency_s=0.0), seed=5
        )
        slow = RUNNER.build_engine(spec)
        slow.config = EngineConfig(
            duration_s=30.0, dpm=FixedTimeoutDPM(wake_latency_s=0.05), seed=5
        )
        fast_result = fast.run()
        slow_result = slow.run()
        from repro.metrics.performance import mean_response_time

        assert mean_response_time(slow_result.jobs) > mean_response_time(
            fast_result.jobs
        )
