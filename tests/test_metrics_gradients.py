"""Spatial gradient metric tests."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.metrics.gradients import max_gradient_series, spatial_gradient_fraction


class TestSeries:
    def test_max_over_layers(self):
        spreads = np.array([[5.0, 12.0], [8.0, 3.0]])
        np.testing.assert_allclose(max_gradient_series(spreads), [12.0, 8.0])

    def test_rejects_bad_shape(self):
        with pytest.raises(ConfigurationError):
            max_gradient_series(np.array([1.0]))


class TestFraction:
    def test_counts_exceedances(self):
        spreads = np.array([[16.0], [14.0], [20.0], [10.0]])
        assert spatial_gradient_fraction(spreads) == pytest.approx(0.5)

    def test_threshold_exclusive(self):
        spreads = np.array([[15.0]])
        assert spatial_gradient_fraction(spreads) == 0.0

    def test_custom_threshold(self):
        spreads = np.array([[9.0], [7.0]])
        assert spatial_gradient_fraction(spreads, threshold_k=8.0) == pytest.approx(0.5)
