"""Migration policy tests (§III-B Migr)."""

import pytest

from repro.core.migration import MigrationPolicy

from tests.conftest import make_system_view, make_tick


@pytest.fixture
def policy():
    policy = MigrationPolicy()
    policy.attach(make_system_view(4))
    return policy


class TestMigr:
    def test_migrates_hot_core_to_coolest(self, policy):
        ctx = make_tick({"c0": 90.0, "c1": 70.0, "c2": 55.0, "c3": 65.0})
        actions = policy.on_tick(ctx)
        assert len(actions.migrations) == 1
        migration = actions.migrations[0]
        assert migration.source == "c0"
        assert migration.destination == "c2"
        assert migration.move_running
        assert migration.swap

    def test_no_migration_below_threshold(self, policy):
        ctx = make_tick({"c0": 84.0, "c1": 70.0, "c2": 55.0, "c3": 65.0})
        assert policy.on_tick(ctx).migrations == []

    def test_each_cool_core_receives_at_most_one(self, policy):
        ctx = make_tick({"c0": 90.0, "c1": 89.0, "c2": 55.0, "c3": 60.0})
        actions = policy.on_tick(ctx)
        destinations = [m.destination for m in actions.migrations]
        assert len(destinations) == len(set(destinations))
        assert set(destinations) <= {"c2", "c3"}

    def test_hottest_served_first(self, policy):
        ctx = make_tick({"c0": 88.0, "c1": 92.0, "c2": 55.0, "c3": 60.0})
        actions = policy.on_tick(ctx)
        assert actions.migrations[0].source == "c1"
        assert actions.migrations[0].destination == "c2"

    def test_idle_hot_core_not_migrated(self, policy):
        ctx = make_tick(
            {"c0": 90.0, "c1": 70.0, "c2": 55.0, "c3": 65.0},
            queues={"c0": 0},
        )
        assert policy.on_tick(ctx).migrations == []

    def test_all_hot_yields_no_migrations(self, policy):
        # Shuffling jobs between hot cores would burn migration cost for
        # nothing; the policy must stand down.
        ctx = make_tick({"c0": 90.0, "c1": 91.0, "c2": 92.0, "c3": 93.0})
        assert policy.on_tick(ctx).migrations == []
