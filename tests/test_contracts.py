"""Contract-checker tests (repro.contracts).

Two families:

- fixture-snippet tests per rule: each rule must fire on a seeded
  violation (true positive) and stay quiet on the sanctioned pattern
  (true negative), exercised against throwaway module trees under
  ``tmp_path`` via manifest overrides;
- self-check: the shipped manifests run clean against the repo itself
  (modulo the checked-in baseline), which is the same gate CI applies.
"""

import json
import textwrap
from dataclasses import replace

import pytest

from repro.contracts import (
    ContractError,
    Finding,
    Manifest,
    ModuleCache,
    RuleContext,
    default_root,
    run_contracts,
)
from repro.contracts.baseline import (
    load_baseline,
    split_findings,
    write_baseline,
)
from repro.contracts.findings import assign_indices
from repro.contracts.rules import (
    config_coverage,
    hot_path,
    key_neutrality,
    null_parity,
    slots,
    span_sync,
)


def make_ctx(tmp_path, **manifest_overrides):
    manifest = replace(Manifest(), **manifest_overrides)
    return RuleContext(
        root=tmp_path, cache=ModuleCache(tmp_path), manifest=manifest
    )


def write_module(tmp_path, relpath, source):
    target = tmp_path / relpath
    target.parent.mkdir(parents=True, exist_ok=True)
    target.write_text(textwrap.dedent(source), encoding="utf-8")
    return relpath


class TestHotPathRule:
    def test_fires_on_each_forbidden_construct(self, tmp_path):
        rel = write_module(tmp_path, "mod.py", """\
            class Engine:
                def tick(self, items):
                    pairs = {"k": 1}
                    squares = [x * x for x in items]
                    label = f"tick {len(items)}"
                    fn = lambda x: x
                    def helper():
                        return 1
                    self.call(**pairs)
                    return squares, label, fn, helper
            """)
        ctx = make_ctx(
            tmp_path,
            hot_path_functions=((rel, "Engine.tick"),),
            hot_path_method_sweeps=(),
        )
        details = {f.detail for f in hot_path.check(ctx)}
        assert details == {
            "dict-display", "list-comp", "f-string", "lambda", "closure",
            "kwargs-splat",
        }

    def test_quiet_on_clean_function_and_raise_exemption(self, tmp_path):
        rel = write_module(tmp_path, "mod.py", """\
            class Engine:
                def tick(self, items, buf):
                    total = 0
                    for i, item in enumerate(items):
                        buf[i] = item
                        total += item
                    if total < 0:
                        raise ValueError(f"bad total: {[total]}")
                    return total
            """)
        ctx = make_ctx(
            tmp_path,
            hot_path_functions=((rel, "Engine.tick"),),
            hot_path_method_sweeps=(),
        )
        assert hot_path.check(ctx) == []

    def test_missing_manifest_entry_is_a_finding(self, tmp_path):
        rel = write_module(tmp_path, "mod.py", "x = 1\n")
        ctx = make_ctx(
            tmp_path,
            hot_path_functions=((rel, "Engine.gone"),),
            hot_path_method_sweeps=(),
        )
        [finding] = hot_path.check(ctx)
        assert finding.detail == "missing-function"

    def test_method_sweep_covers_every_definition(self, tmp_path):
        write_module(tmp_path, "pol/a.py", """\
            class A:
                def select_core(self, job, ctx):
                    return [c for c in ctx][0]
            """)
        write_module(tmp_path, "pol/b.py", """\
            class B:
                def select_core(self, job, ctx):
                    return ctx.best
            """)
        ctx = make_ctx(
            tmp_path,
            hot_path_functions=(),
            hot_path_method_sweeps=(("pol", "select_core"),),
        )
        [finding] = hot_path.check(ctx)
        assert finding.scope == "A.select_core"
        assert finding.detail == "list-comp"


class TestSlotsRule:
    def test_fires_on_unslotted_class(self, tmp_path):
        rel = write_module(tmp_path, "mod.py", """\
            class NoSlots:
                def __init__(self):
                    self.x = 1
            """)
        ctx = make_ctx(tmp_path, slots_modules=(rel,), slots_classes=())
        [finding] = slots.check(ctx)
        assert finding.detail == "missing-slots"
        assert finding.scope == "NoSlots"

    def test_quiet_on_slots_and_dataclass_slots(self, tmp_path):
        rel = write_module(tmp_path, "mod.py", """\
            from dataclasses import dataclass

            class Plain:
                __slots__ = ("x",)

            @dataclass(frozen=True, slots=True)
            class Data:
                x: int = 0
            """)
        ctx = make_ctx(
            tmp_path,
            slots_modules=(rel,),
            slots_classes=((rel, "Plain"), (rel, "Data")),
        )
        assert slots.check(ctx) == []


class TestSpanSyncRule:
    ENGINE_DIRTY = """\
        class Engine:
            def _apply(self, core):
                core.gated = True
        """
    ENGINE_CLEAN = """\
        class Engine:
            def _apply(self, core, now):
                core.gated = True
                self._invalidate_event(core, now)

            def _other(self, core):
                core.gated = False
                self._span_dirty = True
        """

    def test_fires_on_unsynced_mutation(self, tmp_path):
        rel = write_module(tmp_path, "engine.py", self.ENGINE_DIRTY)
        ctx = make_ctx(tmp_path, span_engine_module=rel,
                       span_exempt_scopes=frozenset())
        [finding] = span_sync.check(ctx)
        assert finding.detail == "unsynced-gated"
        assert finding.scope == "Engine._apply"

    def test_quiet_when_span_is_closed(self, tmp_path):
        rel = write_module(tmp_path, "engine.py", self.ENGINE_CLEAN)
        ctx = make_ctx(tmp_path, span_engine_module=rel,
                       span_exempt_scopes=frozenset())
        assert span_sync.check(ctx) == []

    def test_exempt_scope_is_skipped(self, tmp_path):
        rel = write_module(tmp_path, "engine.py", self.ENGINE_DIRTY)
        ctx = make_ctx(
            tmp_path, span_engine_module=rel,
            span_exempt_scopes=frozenset({"Engine._apply"}),
        )
        assert span_sync.check(ctx) == []


KEY_RUNNER = """\
    from dataclasses import dataclass

    @dataclass(frozen=True)
    class RunSpec:
        exp_id: int = 1
        policy: str = "Default"
        telemetry: bool = False
    """
KEY_SPEC = """\
    KEY_VERSION = 2

    from dataclasses import dataclass

    @dataclass(frozen=True)
    class CampaignSpec:
        name: str = "c"
        policies: tuple = ()

    def spec_to_dict(spec):
        data = dict(spec.__dict__)
        data.pop("telemetry", None)
        return data
    """


class TestKeyNeutralityRule:
    def setup_fixture(self, tmp_path):
        runner = write_module(tmp_path, "runner.py", KEY_RUNNER)
        spec = write_module(tmp_path, "spec.py", KEY_SPEC)
        return dict(
            key_runspec_module=runner,
            key_spec_module=spec,
            key_golden_path="golden.json",
        )

    def write_golden(self, tmp_path, **overrides):
        golden = {
            "key_version": 2,
            "runspec_fields": ["exp_id", "policy", "telemetry"],
            "dropped_fields": ["telemetry"],
            "serialized_fields": ["exp_id", "policy"],
            "campaign_axes": ["name", "policies"],
        }
        golden.update(overrides)
        (tmp_path / "golden.json").write_text(json.dumps(golden))

    def test_quiet_when_golden_matches(self, tmp_path):
        overrides = self.setup_fixture(tmp_path)
        self.write_golden(tmp_path)
        assert key_neutrality.check(make_ctx(tmp_path, **overrides)) == []

    def test_fires_on_field_drift_without_bump(self, tmp_path):
        overrides = self.setup_fixture(tmp_path)
        self.write_golden(tmp_path, serialized_fields=["exp_id"])
        [finding] = key_neutrality.check(make_ctx(tmp_path, **overrides))
        assert finding.detail == "fields-drift"
        assert "policy" in finding.message

    def test_fires_on_version_mismatch(self, tmp_path):
        overrides = self.setup_fixture(tmp_path)
        self.write_golden(tmp_path, key_version=1,
                          serialized_fields=["exp_id"])
        [finding] = key_neutrality.check(make_ctx(tmp_path, **overrides))
        assert finding.detail == "stale-golden"

    def test_missing_golden_is_a_finding(self, tmp_path):
        overrides = self.setup_fixture(tmp_path)
        [finding] = key_neutrality.check(make_ctx(tmp_path, **overrides))
        assert finding.detail == "missing-golden"

    def test_update_golden_writes_and_check_passes(self, tmp_path):
        overrides = self.setup_fixture(tmp_path)
        ctx = make_ctx(tmp_path, **overrides)
        key_neutrality.update_golden(ctx)
        assert key_neutrality.check(ctx) == []
        golden = json.loads((tmp_path / "golden.json").read_text())
        assert golden["serialized_fields"] == ["exp_id", "policy"]

    def test_update_golden_refuses_unversioned_drift(self, tmp_path):
        overrides = self.setup_fixture(tmp_path)
        self.write_golden(tmp_path, serialized_fields=["exp_id"])
        with pytest.raises(ContractError):
            key_neutrality.update_golden(make_ctx(tmp_path, **overrides))


class TestNullParityRule:
    def test_fires_on_missing_member(self, tmp_path):
        rel = write_module(tmp_path, "mod.py", """\
            class Real:
                enabled = True

                def __init__(self):
                    self.registry = object()

                def emit(self, value):
                    pass

                def __len__(self):
                    return 0

            class _NullReal:
                enabled = False

                def emit(self, value):
                    pass
            """)
        ctx = make_ctx(
            tmp_path, null_parity_pairs=((rel, "Real", "_NullReal"),)
        )
        details = {f.detail for f in null_parity.check(ctx)}
        assert details == {"missing-registry", "missing-__len__"}

    def test_quiet_on_full_parity(self, tmp_path):
        rel = write_module(tmp_path, "mod.py", """\
            class Real:
                def __init__(self):
                    self.registry = object()

                def emit(self, value):
                    pass

            class _NullReal:
                registry = None

                def emit(self, value):
                    pass
            """)
        ctx = make_ctx(
            tmp_path, null_parity_pairs=((rel, "Real", "_NullReal"),)
        )
        assert null_parity.check(ctx) == []


class TestConfigCoverageRule:
    CONFIG = """\
        from dataclasses import dataclass

        @dataclass(frozen=True)
        class Config:
            covered: float = 1.0
            aliased: bool = False
            uncovered: int = 3
        """

    def test_fires_on_uncovered_knob_and_honours_aliases(self, tmp_path):
        cfg = write_module(tmp_path, "config.py", self.CONFIG)
        tests = write_module(tmp_path, "test_diff.py", """\
            def test_one():
                run(covered=2.0, with_alias=True)
            """)
        ctx = make_ctx(
            tmp_path,
            config_sources=((cfg, "Config"),),
            coverage_test_files=(tests,),
            coverage_aliases=(("aliased", ("with_alias",)),),
        )
        [finding] = config_coverage.check(ctx)
        assert finding.detail == "knob-uncovered"
        assert finding.scope == "Config.uncovered"

    def test_quiet_when_all_knobs_covered(self, tmp_path):
        cfg = write_module(tmp_path, "config.py", self.CONFIG)
        tests = write_module(tmp_path, "test_diff.py", """\
            def test_one():
                run(covered=2.0, aliased=True, uncovered=5)
            """)
        ctx = make_ctx(
            tmp_path,
            config_sources=((cfg, "Config"),),
            coverage_test_files=(tests,),
            coverage_aliases=(),
        )
        assert config_coverage.check(ctx) == []


class TestFindingsAndBaseline:
    def test_fingerprint_ignores_line_numbers(self):
        a = Finding(rule="r", path="p.py", line=10, scope="S.f",
                    detail="d", message="m")
        b = Finding(rule="r", path="p.py", line=99, scope="S.f",
                    detail="d", message="m")
        assert a.fingerprint == b.fingerprint

    def test_assign_indices_disambiguates_duplicates(self):
        f = Finding(rule="r", path="p.py", line=1, scope="S.f",
                    detail="d", message="m")
        indexed = assign_indices([f, f, f])
        assert [x.fingerprint for x in indexed] == [
            "r::p.py::S.f::d::0", "r::p.py::S.f::d::1", "r::p.py::S.f::d::2",
        ]

    def test_baseline_round_trip_preserves_notes(self, tmp_path):
        f = Finding(rule="r", path="p.py", line=1, scope="S.f",
                    detail="d", message="m")
        path = tmp_path / "baseline.json"
        write_baseline(path, [f], {f.fingerprint: "measured faster"})
        baseline = load_baseline(path)
        assert baseline == {f.fingerprint: "measured faster"}
        new, old = split_findings([f], baseline)
        assert new == [] and old == [f]

    def test_unknown_rule_rejected(self):
        with pytest.raises(ContractError):
            run_contracts(rules=["no-such-rule"])


class TestRepoSelfCheck:
    """The shipped manifests against the repo itself: the CI gate."""

    def test_repo_is_clean_modulo_baseline(self):
        root = default_root()
        findings = run_contracts(root=root)
        baseline = load_baseline(root / Manifest().baseline_path)
        new, baselined = split_findings(findings, baseline)
        assert new == [], "\n" + "\n".join(f.render() for f in new)
        # every baseline entry must still correspond to a live finding
        live = {f.fingerprint for f in baselined}
        stale = set(baseline) - live
        assert not stale, f"stale baseline entries: {sorted(stale)}"

    def test_cli_lint_exits_zero(self, capsys):
        from repro.cli import main
        assert main(["lint"]) == 0
        assert "clean" in capsys.readouterr().out
