"""Stack assembly tests."""

import pytest

from repro.errors import ThermalModelError
from repro.floorplan.experiments import build_experiment
from repro.thermal.materials import COPPER, SILICON
from repro.thermal.stack import Stack3D, StackLayer, build_stack


class TestStackLayer:
    def test_rejects_non_positive_thickness(self):
        with pytest.raises(ThermalModelError):
            StackLayer("bad", 0.0, SILICON)

    def test_active_layer_needs_floorplan(self):
        with pytest.raises(ThermalModelError):
            StackLayer("bad", 1e-3, SILICON, floorplan=None, is_active=True)

    def test_rejects_non_positive_interface_resistivity(self):
        with pytest.raises(ThermalModelError):
            StackLayer("bad", 1e-3, SILICON, interface_resistivity=0.0)


class TestBuildStack:
    def test_layer_order_sink_first(self):
        stack = build_stack(build_experiment(1))
        names = [layer.name for layer in stack.layers]
        assert names == ["sink", "spreader", "die0", "die1"]

    def test_four_tier_stack(self):
        stack = build_stack(build_experiment(3))
        assert stack.n_layers == 6  # sink, spreader, 4 dies

    def test_die_thickness_from_table2(self):
        stack = build_stack(build_experiment(1))
        for _, die in stack.die_layers():
            assert die.thickness_m == pytest.approx(0.15e-3)

    def test_interlayer_between_dies_only(self):
        stack = build_stack(build_experiment(3))
        dies = [layer for _, layer in stack.die_layers()]
        # Every die except the top one carries an interface above it.
        for die in dies[:-1]:
            assert die.interface_resistivity == pytest.approx(0.23)
            assert die.interface_thickness_m == pytest.approx(0.02e-3)
        assert dies[-1].interface_resistivity is None

    def test_all_dies_active(self):
        stack = build_stack(build_experiment(4))
        assert len(stack.active_layers()) == 4

    def test_convection_parameters(self):
        stack = build_stack(build_experiment(2))
        assert stack.convection_resistance == pytest.approx(0.1)
        assert stack.convection_capacitance == pytest.approx(140.0)

    def test_package_conductivity_multipliers(self):
        stack = build_stack(build_experiment(1))
        assert stack.layers[0].material.conductivity > COPPER.conductivity
        assert stack.layers[1].material.conductivity > COPPER.conductivity


class TestStackValidation:
    def test_empty_stack_rejected(self):
        with pytest.raises(ThermalModelError):
            Stack3D(
                layers=(),
                width_m=1.0,
                height_m=1.0,
                convection_resistance=0.1,
                convection_capacitance=140.0,
            )

    def test_mismatched_floorplan_rejected(self):
        config = build_experiment(1)
        layer = StackLayer(
            "die0", 1e-4, SILICON, floorplan=config.layers[0], is_active=True
        )
        with pytest.raises(ThermalModelError):
            Stack3D(
                layers=(layer,),
                width_m=1.0,
                height_m=1.0,
                convection_resistance=0.1,
                convection_capacitance=140.0,
            )

    def test_negative_internal_resistance_rejected(self):
        config = build_experiment(1)
        with pytest.raises(ThermalModelError):
            build_stack(config, internal_resistance=-0.1)
