"""Property-based tests (hypothesis) on core invariants."""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.floorplan.experiments import build_experiment
from repro.floorplan.floorplan import Floorplan
from repro.floorplan.unit import Unit, UnitKind
from repro.metrics.cycles import rainflow_count
from repro.metrics.hotspots import hot_spot_fraction
from repro.sched.lfsr import GaloisLFSR
from repro.thermal.grid import GridMapper
from repro.thermal.materials import AMBIENT_K
from repro.thermal.network import build_network
from repro.thermal.solver import SteadyStateSolver, TransientSolver
from repro.thermal.stack import build_stack
from repro.thermal.tsv import joint_resistivity

# Shared small network for solver properties.
_NETWORK = build_network(build_stack(build_experiment(1)), 3, 3, AMBIENT_K)
_STEADY = SteadyStateSolver(_NETWORK)


@st.composite
def node_powers(draw):
    values = draw(
        st.lists(
            st.floats(min_value=0.0, max_value=10.0),
            min_size=_NETWORK.n_nodes,
            max_size=_NETWORK.n_nodes,
        )
    )
    return np.array(values)


class TestThermalProperties:
    @given(node_powers())
    @settings(max_examples=25, deadline=None)
    def test_steady_state_never_below_ambient(self, powers):
        temps = _STEADY.solve(powers)
        assert (temps >= AMBIENT_K - 1e-6).all()

    @given(node_powers())
    @settings(max_examples=25, deadline=None)
    def test_steady_state_heat_balance(self, powers):
        """All injected power must leave through the convection node."""
        temps = _STEADY.solve(powers)
        outflow = _NETWORK.ambient_conductance[_NETWORK.sink_node] * (
            temps[_NETWORK.sink_node] - AMBIENT_K
        )
        assert outflow == pytest.approx(powers.sum(), rel=1e-6, abs=1e-6)

    @given(node_powers(), st.floats(min_value=0.01, max_value=1.0))
    @settings(max_examples=15, deadline=None)
    def test_transient_bounded_by_steady_state(self, powers, dt):
        """Heating from ambient under constant power never overshoots
        the equilibrium (the network is passive)."""
        steady = _STEADY.solve(powers)
        solver = TransientSolver(_NETWORK, dt=dt)
        temps = np.full(_NETWORK.n_nodes, AMBIENT_K)
        for _ in range(20):
            temps = solver.step(temps, powers)
            assert (temps <= steady + 1e-6).all()

    @given(st.floats(min_value=0.0, max_value=1.0))
    @settings(max_examples=50)
    def test_tsv_resistivity_bounded(self, density):
        rho = joint_resistivity(density)
        assert 1.0 / 400.0 <= rho <= 0.25 + 1e-12


@st.composite
def tiled_floorplan(draw):
    """A 1-D strip of units tiling a die exactly."""
    n = draw(st.integers(min_value=1, max_value=6))
    widths = draw(
        st.lists(
            st.floats(min_value=0.5e-3, max_value=3e-3),
            min_size=n,
            max_size=n,
        )
    )
    units = []
    x = 0.0
    for i, w in enumerate(widths):
        units.append(Unit(f"u{i}", x, 0.0, w, 2e-3, UnitKind.CORE))
        x += w
    return Floorplan(x, 2e-3, units)


class TestGridProperties:
    @given(
        tiled_floorplan(),
        st.integers(min_value=1, max_value=7),
        st.integers(min_value=1, max_value=7),
    )
    @settings(max_examples=30, suppress_health_check=[HealthCheck.too_slow], deadline=None)
    def test_power_conservation(self, plan, rows, cols):
        mapper = GridMapper(plan, rows, cols)
        powers = {u.name: 1.0 + i for i, u in enumerate(plan.units)}
        cells = mapper.cell_powers(powers)
        assert cells.sum() == pytest.approx(sum(powers.values()), rel=1e-9)

    @given(
        tiled_floorplan(),
        st.integers(min_value=1, max_value=7),
        st.integers(min_value=1, max_value=7),
    )
    @settings(max_examples=30, suppress_health_check=[HealthCheck.too_slow], deadline=None)
    def test_uniform_field_reads_back_exactly(self, plan, rows, cols):
        mapper = GridMapper(plan, rows, cols)
        temps = mapper.unit_temperatures(np.full(rows * cols, 333.0))
        for value in temps.values():
            assert value == pytest.approx(333.0)


class TestLFSRProperties:
    @given(st.integers(min_value=0, max_value=0xFFFF))
    @settings(max_examples=50)
    def test_state_stays_in_16_bits_and_nonzero(self, seed):
        lfsr = GaloisLFSR(seed)
        for _ in range(64):
            word = lfsr.next_word()
            assert 0 < word <= 0xFFFF

    @given(
        st.lists(st.floats(min_value=0.0, max_value=5.0), min_size=2, max_size=8),
        st.integers(min_value=0, max_value=0xFFFF),
    )
    @settings(max_examples=50)
    def test_choice_only_selects_positive_weights(self, weights, seed):
        if sum(weights) <= 0.0:
            return
        lfsr = GaloisLFSR(seed)
        for _ in range(32):
            index = lfsr.choice(weights)
            assert weights[index] > 0.0


class TestMetricProperties:
    @given(
        st.lists(
            st.lists(st.floats(min_value=300.0, max_value=400.0), min_size=2, max_size=4),
            min_size=1,
            max_size=40,
        ).filter(lambda rows: len({len(r) for r in rows}) == 1)
    )
    @settings(max_examples=30)
    def test_hot_spot_fraction_in_unit_interval(self, rows):
        fraction = hot_spot_fraction(np.array(rows))
        assert 0.0 <= fraction <= 1.0

    @given(
        st.lists(st.floats(min_value=300.0, max_value=400.0), min_size=2, max_size=60)
    )
    @settings(max_examples=50)
    def test_rainflow_ranges_bounded_by_series_span(self, series):
        cycles = rainflow_count(np.array(series))
        span = max(series) - min(series)
        for magnitude, count in cycles:
            assert 0.0 < magnitude <= span + 1e-9
            assert count in (0.5, 1.0)

    @given(
        st.lists(st.floats(min_value=300.0, max_value=400.0), min_size=4, max_size=60)
    )
    @settings(max_examples=50)
    def test_rainflow_total_count_matches_reversals(self, series):
        """Every reversal pairs into half or full cycles; total cycle
        count can never exceed the number of turning points."""
        arr = np.array(series)
        cycles = rainflow_count(arr)
        total = sum(count for _, count in cycles)
        assert total <= len(series)


class TestProbabilisticPolicyProperties:
    @given(
        st.lists(st.floats(min_value=40.0, max_value=95.0), min_size=4, max_size=4),
        st.integers(min_value=1, max_value=30),
    )
    @settings(max_examples=30, deadline=None)
    def test_probabilities_always_normalized_and_nonnegative(self, temps, ticks):
        from repro.core.adapt3d import Adapt3D

        from tests.conftest import make_system_view, make_tick

        policy = Adapt3D()
        policy.attach(make_system_view(4))
        mapping = {f"c{i}": temps[i] for i in range(4)}
        for _ in range(ticks):
            policy.on_tick(make_tick(mapping))
            probs = policy.probabilities
            assert all(p >= 0.0 for p in probs.values())
            total = sum(probs.values())
            assert total == pytest.approx(1.0) or total == 0.0
