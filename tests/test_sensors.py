"""Temperature sensor tests."""

import pytest

from repro.errors import ThermalModelError
from repro.floorplan.experiments import build_experiment
from repro.thermal.model import ThermalModel
from repro.thermal.sensors import SensorBank, TemperatureSensor


class TestSensor:
    def test_ideal_sensor_passes_through(self):
        assert TemperatureSensor().read(358.15) == pytest.approx(358.15)

    def test_quantization(self):
        sensor = TemperatureSensor(quantization_step=1.0)
        assert sensor.read(358.4) == pytest.approx(358.0)
        assert sensor.read(358.6) == pytest.approx(359.0)

    def test_noise_requires_rng(self):
        with pytest.raises(ThermalModelError):
            TemperatureSensor(noise_sigma=0.5)

    def test_noise_is_applied(self):
        import numpy as np

        rng = np.random.default_rng(7)
        sensor = TemperatureSensor(noise_sigma=2.0, rng=rng)
        readings = [sensor.read(350.0) for _ in range(200)]
        spread = max(readings) - min(readings)
        assert spread > 1.0
        assert abs(sum(readings) / len(readings) - 350.0) < 1.0

    def test_rejects_negative_parameters(self):
        with pytest.raises(ThermalModelError):
            TemperatureSensor(noise_sigma=-1.0)
        with pytest.raises(ThermalModelError):
            TemperatureSensor(quantization_step=-1.0)


class TestSensorBank:
    def test_reads_every_core(self):
        model = ThermalModel(build_experiment(1), nrows=4, ncols=4)
        bank = SensorBank(model)
        readings = bank.read_cores()
        assert set(readings) == set(model.core_names)

    def test_reads_hot_spot_not_mean(self):
        """Sensors sit at the core's hottest cell."""
        model = ThermalModel(build_experiment(1), nrows=6, ncols=6)
        powers = {
            name: 4.0 if model.unit_kind(name).value == "core" else 0.5
            for name in model.unit_names
        }
        model.initialize_steady_state(powers)
        bank = SensorBank(model)
        readings = bank.read_cores()
        maxes = model.unit_max_temperatures()
        for core, value in readings.items():
            assert value == pytest.approx(maxes[core])

    def test_deterministic_given_seed(self):
        model = ThermalModel(build_experiment(1), nrows=4, ncols=4)
        a = SensorBank(model, noise_sigma=1.0, seed=42).read_cores()
        b = SensorBank(model, noise_sigma=1.0, seed=42).read_cores()
        assert a == b
