"""Batched multi-run engine tests.

Three families:

- differential tests proving a :class:`BatchSimulationEngine` in
  ``exact`` propagation mode reproduces per-run serial
  :meth:`SimulationEngine.run` results bit for bit (every recorded
  array, energy, jobs, migrations) — a fast multi-seed slice runs in
  tier-1, the full stack x policy x DPM matrix under the ``slow``
  marker;
- ``gemm`` propagation tests pinning the fused one-GEMM path to the
  serial results within BLAS-kernel rounding (and, for the implicit
  solvers, still bit-identical — their batched step is multi-RHS
  triangular solves);
- unit tests of the batching contract: compatibility validation,
  ``run_batch`` grouping/order, and the noise/mix plumbing through the
  batched path.
"""

from dataclasses import replace

import numpy as np
import pytest

from repro.analysis.runner import ExperimentRunner, RunSpec
from repro.errors import ConfigurationError, SchedulerError
from repro.sched.batch import BatchSimulationEngine

RUNNER = ExperimentRunner()

RESULT_ARRAYS = (
    "times",
    "unit_temps_k",
    "core_temps_k",
    "core_peak_temps_k",
    "layer_spreads_k",
    "utilization",
    "vf_indices",
    "core_states",
    "total_power_w",
)

DISCRETE_ARRAYS = ("times", "utilization", "vf_indices", "core_states")


def seed_sweep(exp_id, policy, n_seeds=3, duration_s=6.0, **overrides):
    """A small multi-seed batch of otherwise identical specs."""
    return [
        RunSpec(exp_id=exp_id, policy=policy, duration_s=duration_s,
                seed=2009 + i, **overrides)
        for i in range(n_seeds)
    ]


def run_serial(specs):
    return [RUNNER.run(spec) for spec in specs]


def run_batched(specs, propagation="exact"):
    lanes = [RUNNER.build_engine(spec) for spec in specs]
    return BatchSimulationEngine(lanes, propagation=propagation).run()


def assert_results_identical(serial, batched):
    for s, b in zip(serial, batched):
        for name in RESULT_ARRAYS:
            np.testing.assert_array_equal(
                getattr(s, name), getattr(b, name), err_msg=name
            )
        assert s.energy_j == b.energy_j
        assert s.migrations == b.migrations
        assert_jobs_identical(s, b)


def assert_jobs_identical(s, b):
    assert len(s.jobs) == len(b.jobs)
    for js, jb in zip(s.jobs, b.jobs):
        assert js.completion_time == jb.completion_time
        assert js.remaining_s == jb.remaining_s
        assert js.migrations == jb.migrations
        assert js.core == jb.core


class TestBatchDifferentialFast:
    """Tier-1 smoke slice: batched exact mode is bit-identical."""

    @pytest.mark.parametrize("exp_id", [1, 4])
    @pytest.mark.parametrize("policy", ["Default", "Adapt3D&DVFS_TT"])
    def test_batch_matches_serial(self, exp_id, policy):
        specs = seed_sweep(exp_id, policy)
        assert_results_identical(run_serial(specs), run_batched(specs))

    def test_batch_matches_serial_with_dpm(self):
        specs = seed_sweep(1, "Migr", with_dpm=True)
        assert_results_identical(run_serial(specs), run_batched(specs))

    def test_batch_matches_serial_with_sensor_noise(self):
        """Per-lane sensor RNG draws stay in serial order, so even noisy
        runs batch bit-identically."""
        specs = seed_sweep(4, "Adapt3D", sensor_noise_sigma=1.0)
        assert_results_identical(run_serial(specs), run_batched(specs))

    @pytest.mark.parametrize("solver", ["backward_euler", "crank_nicolson"])
    def test_implicit_solvers_batch_bitwise(self, solver):
        """Implicit batched steps are multi-RHS solves, bit-identical in
        exact mode; gemm mode still runs the mean *readback* as one
        GEMM, so temperatures track at rounding level there."""
        specs = seed_sweep(4, "Adapt3D", n_seeds=2, thermal_solver=solver)
        serial = run_serial(specs)
        assert_results_identical(serial, run_batched(specs, "exact"))
        for s, b in zip(serial, run_batched(specs, "gemm")):
            np.testing.assert_allclose(
                s.unit_temps_k, b.unit_temps_k, rtol=0.0, atol=1e-9
            )
            np.testing.assert_allclose(
                s.core_peak_temps_k, b.core_peak_temps_k, rtol=0.0, atol=1e-9
            )
            assert_jobs_identical(s, b)

    def test_gemm_mode_tracks_serial_within_ulp(self):
        """The one-GEMM propagation deviates only at BLAS-kernel
        rounding; the discrete scheduling stream stays identical."""
        specs = seed_sweep(4, "Adapt3D")
        serial = run_serial(specs)
        batched = run_batched(specs, propagation="gemm")
        for s, b in zip(serial, batched):
            np.testing.assert_allclose(
                s.unit_temps_k, b.unit_temps_k, rtol=0.0, atol=1e-9
            )
            np.testing.assert_allclose(
                s.core_peak_temps_k, b.core_peak_temps_k, rtol=0.0, atol=1e-9
            )
            for name in DISCRETE_ARRAYS:
                np.testing.assert_array_equal(
                    getattr(s, name), getattr(b, name), err_msg=name
                )
            assert s.migrations == b.migrations
            assert_jobs_identical(s, b)

    def test_single_lane_batch_is_bitwise(self):
        spec = RunSpec(exp_id=1, policy="Adapt3D", duration_s=6.0, seed=2009)
        assert_results_identical(run_serial([spec]), run_batched([spec]))


@pytest.mark.slow
class TestBatchDifferentialMatrix:
    """Full stack x policy x DPM differential matrix, multi-seed."""

    @pytest.mark.parametrize("exp_id", [1, 2, 3, 4])
    @pytest.mark.parametrize(
        "policy",
        ["Default", "Adapt3D", "Adapt3D&DVFS_TT", "Migr", "CGate",
         "DVFS_Util"],
    )
    @pytest.mark.parametrize("with_dpm", [False, True])
    def test_batch_matches_serial(self, exp_id, policy, with_dpm):
        specs = seed_sweep(
            exp_id, policy, n_seeds=2, duration_s=12.0, with_dpm=with_dpm
        )
        assert_results_identical(run_serial(specs), run_batched(specs))

    def test_mixed_policy_batch(self):
        """Lanes need not be homogeneous: one batch may mix policies."""
        specs = [
            RunSpec(exp_id=3, policy=policy, duration_s=12.0, seed=2009)
            for policy in ("Default", "Adapt3D", "Migr", "Adapt3D&DVFS_TT")
        ]
        assert_results_identical(run_serial(specs), run_batched(specs))


class TestBatchValidation:
    def test_empty_batch_rejected(self):
        with pytest.raises(SchedulerError):
            BatchSimulationEngine([])

    def test_unknown_propagation_rejected(self):
        engine = RUNNER.build_engine(
            RunSpec(exp_id=1, policy="Default", duration_s=2.0)
        )
        with pytest.raises(SchedulerError):
            BatchSimulationEngine([engine], propagation="bogus")

    def test_mixed_duration_rejected(self):
        a = RUNNER.build_engine(
            RunSpec(exp_id=1, policy="Default", duration_s=2.0)
        )
        b = RUNNER.build_engine(
            RunSpec(exp_id=1, policy="Default", duration_s=3.0, seed=2)
        )
        with pytest.raises(SchedulerError):
            BatchSimulationEngine([a, b])

    def test_mixed_solver_rejected(self):
        a = RUNNER.build_engine(
            RunSpec(exp_id=1, policy="Default", duration_s=2.0)
        )
        b = RUNNER.build_engine(
            RunSpec(exp_id=1, policy="Default", duration_s=2.0, seed=2,
                    thermal_solver="backward_euler")
        )
        with pytest.raises(SchedulerError):
            BatchSimulationEngine([a, b])

    def test_foreign_assembly_rejected(self):
        """Lanes from different runners hold different assemblies."""
        a = RUNNER.build_engine(
            RunSpec(exp_id=1, policy="Default", duration_s=2.0)
        )
        b = ExperimentRunner().build_engine(
            RunSpec(exp_id=1, policy="Default", duration_s=2.0, seed=2)
        )
        with pytest.raises(SchedulerError):
            BatchSimulationEngine([a, b])

    def test_legacy_scan_lane_rejected(self):
        engine = RUNNER.build_engine(
            RunSpec(exp_id=1, policy="Default", duration_s=2.0)
        )
        engine.config = replace(engine.config, event_loop="legacy_scan")
        with pytest.raises(SchedulerError):
            BatchSimulationEngine([engine])


class TestRunBatch:
    def test_groups_and_preserves_order(self):
        """Mixed-stack spec lists come back in input order, each result
        bit-identical to a serial run."""
        specs = [
            RunSpec(exp_id=1, policy="Default", duration_s=4.0, seed=1),
            RunSpec(exp_id=4, policy="Adapt3D", duration_s=4.0, seed=1),
            RunSpec(exp_id=1, policy="Adapt3D", duration_s=4.0, seed=2),
            RunSpec(exp_id=4, policy="Adapt3D", duration_s=4.0, seed=2),
            RunSpec(exp_id=1, policy="Default", duration_s=2.0, seed=3),
        ]
        serial = run_serial(specs)
        batched = RUNNER.run_batch(specs)
        assert_results_identical(serial, batched)

    def test_group_batchable_partitions_by_compatibility(self):
        specs = [
            RunSpec(exp_id=1, policy="Default", duration_s=4.0, seed=1),
            RunSpec(exp_id=4, policy="Default", duration_s=4.0, seed=1),
            RunSpec(exp_id=1, policy="Adapt3D", duration_s=4.0, seed=2),
            RunSpec(exp_id=1, policy="Default", duration_s=8.0, seed=1),
        ]
        groups = ExperimentRunner.group_batchable(specs)
        assert groups == [[0, 2], [1], [3]]

    def test_named_mix_plumbs_through_batch(self):
        specs = seed_sweep(
            1, "Default", n_seeds=2, duration_s=4.0,
            workload_mix="batch_compute",
        )
        assert_results_identical(run_serial(specs), run_batched(specs))

    def test_conflicting_mix_fields_rejected(self):
        with pytest.raises(ConfigurationError):
            RUNNER.build_engine(
                RunSpec(exp_id=1, policy="Default", duration_s=2.0,
                        workload_mix="server",
                        benchmark_mix=(("gzip", 4),))
            )

    def test_unknown_named_mix_rejected(self):
        from repro.errors import WorkloadError

        with pytest.raises(WorkloadError):
            RUNNER.build_engine(
                RunSpec(exp_id=1, policy="Default", duration_s=2.0,
                        workload_mix="nope")
            )
