"""CLI tests."""

import pytest

from repro.cli import main


class TestCli:
    def test_policies_lists_all(self, capsys):
        assert main(["policies"]) == 0
        out = capsys.readouterr().out
        assert "Adapt3D" in out
        assert "Default" in out

    def test_floorplan_renders(self, capsys):
        assert main(["floorplan", "--exp", "2"]) == 0
        out = capsys.readouterr().out
        assert "EXP-2" in out
        assert "C" in out

    def test_run_short(self, capsys):
        assert main([
            "run", "Default", "--exp", "1", "--duration", "5",
        ]) == 0
        out = capsys.readouterr().out
        assert "hot spots" in out
        assert "peak temperature" in out

    def test_compare_subset(self, capsys):
        assert main([
            "compare", "Default", "Adapt3D",
            "--exp", "1", "--duration", "5",
        ]) == 0
        out = capsys.readouterr().out
        assert "Adapt3D" in out
        assert "delay" in out

    def test_compare_unknown_policy_fails(self, capsys):
        assert main(["compare", "NotAPolicy", "--duration", "5"]) == 2

    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            main([])
