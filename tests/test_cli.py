"""CLI tests."""

import pytest

from repro.cli import main


class TestCli:
    def test_policies_lists_all(self, capsys):
        assert main(["policies"]) == 0
        out = capsys.readouterr().out
        assert "Adapt3D" in out
        assert "Default" in out

    def test_floorplan_renders(self, capsys):
        assert main(["floorplan", "--exp", "2"]) == 0
        out = capsys.readouterr().out
        assert "EXP-2" in out
        assert "C" in out

    def test_run_short(self, capsys):
        assert main([
            "run", "Default", "--exp", "1", "--duration", "5",
        ]) == 0
        out = capsys.readouterr().out
        assert "hot spots" in out
        assert "peak temperature" in out

    def test_compare_subset(self, capsys):
        assert main([
            "compare", "Default", "Adapt3D",
            "--exp", "1", "--duration", "5",
        ]) == 0
        out = capsys.readouterr().out
        assert "Adapt3D" in out
        assert "delay" in out

    def test_compare_unknown_policy_fails(self, capsys):
        assert main(["compare", "NotAPolicy", "--duration", "5"]) == 2

    def test_trace_exports_chrome_trace(self, tmp_path, capsys):
        import json

        out = tmp_path / "trace.json"
        jsonl = tmp_path / "trace.jsonl"
        assert main([
            "trace", "Default", "--exp", "1", "--duration", "5",
            "--out", str(out), "--jsonl", str(jsonl),
        ]) == 0
        printed = capsys.readouterr().out
        assert "trace events" in printed
        assert "tick phases" in printed
        assert "engine counters" in printed
        doc = json.loads(out.read_text())
        assert doc["traceEvents"]
        phases = {e["ph"] for e in doc["traceEvents"]}
        assert {"M", "i", "X"} <= phases
        assert jsonl.read_text().strip()

    def test_trace_ring_capacity_reported(self, tmp_path, capsys):
        assert main([
            "trace", "Default", "--exp", "1", "--duration", "5",
            "--out", str(tmp_path / "t.json"), "--capacity", "16",
        ]) == 0
        assert "dropped" in capsys.readouterr().out

    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            main([])
