"""Policy registry tests."""

import pytest

from repro.core.base import Policy
from repro.core.registry import build_policy, policy_names
from repro.errors import ConfigurationError

EXPECTED = [
    "Default",
    "CGate",
    "DVFS_TT",
    "DVFS_Util",
    "DVFS_FLP",
    "Migr",
    "AdaptRand",
    "Adapt3D",
    "Adapt3D&DVFS_TT",
    "Adapt3D&DVFS_Util",
    "Adapt3D&DVFS_FLP",
]


class TestRegistry:
    def test_all_figure_policies_registered(self):
        assert policy_names() == EXPECTED

    @pytest.mark.parametrize("name", EXPECTED)
    def test_build_each(self, name):
        policy = build_policy(name)
        assert isinstance(policy, Policy)
        assert policy.name == name

    def test_builders_return_fresh_instances(self):
        assert build_policy("Adapt3D") is not build_policy("Adapt3D")

    def test_unknown_name(self):
        with pytest.raises(ConfigurationError):
            build_policy("nope")
