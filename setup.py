"""Setuptools entry point.

Kept alongside pyproject.toml so ``pip install -e .`` works in offline
environments without the ``wheel`` package (legacy editable install).
"""

from setuptools import setup

setup()
