"""Figure 5 regeneration: spatial gradients with DPM.

Percentage of time the per-layer hottest-coolest unit gradient exceeds
15 C (gradients of 15-20 C start causing clock skew problems). Our
uniform within-unit power and conductive stack produce smaller absolute
gradients than the paper's testbed, so the series is reported at the
paper's 15 C threshold *and* at a calibrated 8 C threshold where our
dynamics live (see EXPERIMENTS.md); the policy ordering is what must
hold: adaptive allocation policies, which balance the temperature,
outperform the rest by a wide margin.
"""

import pytest

from repro.analysis.figures import FigureSeries
from repro.core.registry import policy_names
from repro.metrics.gradients import spatial_gradient_fraction

from benchmarks.conftest import emit

EXPS = (1, 2, 3, 4)
CALIBRATED_THRESHOLD_K = 8.0


def build_figure(get_result):
    policies = policy_names()
    fig = FigureSeries(
        "Figure 5 — spatial gradients (with DPM): % time the max "
        "per-layer gradient exceeds the threshold",
        groups=policies,
    )
    for exp in EXPS:
        fig.add_series(
            f"EXP{exp} >15C",
            [
                100.0
                * spatial_gradient_fraction(
                    get_result(exp, policy, True).layer_spreads_k
                )
                for policy in policies
            ],
        )
    for exp in EXPS:
        fig.add_series(
            f"EXP{exp} >8C",
            [
                100.0
                * spatial_gradient_fraction(
                    get_result(exp, policy, True).layer_spreads_k,
                    threshold_k=CALIBRATED_THRESHOLD_K,
                )
                for policy in policies
            ],
        )
    return fig


def test_fig5_spatial_gradients(benchmark, results_dir, get_result):
    fig = benchmark.pedantic(
        build_figure, args=(get_result,), rounds=1, iterations=1
    )
    emit(results_dir, "fig5_gradients", fig.to_text())

    # Adaptive allocation crushes gradients relative to Default on the
    # 4-tier stack (the paper's headline Figure 5 observation).
    base = fig.value("EXP4 >15C", "Default")
    assert base > 1.0
    assert fig.value("EXP4 >15C", "Adapt3D") < base / 2.0
    assert fig.value("EXP4 >15C", "AdaptRand") < base

    # Hybrids inherit the benefit.
    assert fig.value("EXP4 >15C", "Adapt3D&DVFS_TT") < base
