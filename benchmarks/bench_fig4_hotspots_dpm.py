"""Figure 4 regeneration: thermal hot spots with DPM.

Same layout as Figure 3 but with the fixed-timeout power manager
enabled. Expected shape (paper §V-B): a significant reduction in hot
spots across the board versus Figure 3 — sleeping cores cool down
considerably — with the non-DVFS policies benefiting most (DVFS fills
idle slots by stretching execution, leaving less sleep time).
"""

import pytest

from repro.analysis.figures import FigureSeries
from repro.core.registry import policy_names
from repro.metrics.report import summarize

from benchmarks.conftest import emit

EXPS = (1, 2, 3, 4)


def build_figure(get_result):
    policies = policy_names()
    fig = FigureSeries(
        "Figure 4 — thermal hot spots (with DPM), % time above 85 C",
        groups=policies,
    )
    for exp in EXPS:
        fig.add_series(
            f"EXP{exp} hot%",
            [
                summarize(get_result(exp, policy, True)).hot_spot_pct
                for policy in policies
            ],
        )
    return fig


def test_fig4_hotspots_with_dpm(benchmark, results_dir, get_result):
    fig = benchmark.pedantic(
        build_figure, args=(get_result,), rounds=1, iterations=1
    )
    emit(results_dir, "fig4_hotspots_dpm", fig.to_text())

    # DPM cuts hot spots versus the no-DPM runs (Figure 3 vs Figure 4).
    for exp in (3, 4):
        without = summarize(get_result(exp, "Default", False)).hot_spot_pct
        with_dpm = fig.value(f"EXP{exp} hot%", "Default")
        assert with_dpm < without

    # Hybrids improve on plain DVFS on the 4-tier stacks (20-40% in the
    # paper; we assert the direction and a meaningful margin).
    dvfs = fig.value("EXP4 hot%", "DVFS_TT")
    hybrid = fig.value("EXP4 hot%", "Adapt3D&DVFS_TT")
    assert hybrid < dvfs

    # Adaptive allocation beats Default under DPM on the hot stack.
    assert fig.value("EXP4 hot%", "Adapt3D") < fig.value("EXP4 hot%", "Default")
