"""Sensor-noise robustness study: policy quality vs sensor sigma.

The paper assumes ideal thermal sensors; real on-die sensors carry
Gaussian noise of up to a few kelvin. This study sweeps the campaign
``sensor_noise_sigmas`` axis for the reactive policies on the hottest
stack (EXP-4) and reports how the §V metrics degrade: a robust policy
should hold its hot-spot and peak-temperature numbers as sigma grows,
while a threshold-chasing policy starts mis-reading which cores are
hot. The multi-seed sweep rides the campaign store (resumable, shared
with the figure benches) through the batched backend.

Emits ``noise_robustness.txt`` and merges a machine-readable section
into ``BENCH_noise_robustness.json`` under ``benchmarks/results/``.
``REPRO_BENCH_SMOKE=1`` shortens the runs.
"""

import json
import os

from repro.analysis.figures import FigureSeries
from repro.campaign import CampaignExecutor, CampaignSpec, run_key
from repro.metrics.report import summarize

from benchmarks.conftest import BENCH_SEED, emit

SMOKE = os.environ.get("REPRO_BENCH_SMOKE", "") not in ("", "0")

EXP_ID = 4
POLICIES = ("Default", "AdaptRand", "Adapt3D", "Adapt3D&DVFS_TT")
SIGMAS_K = (0.0, 0.5, 1.0, 2.0)
SEEDS = (BENCH_SEED,) if SMOKE else (BENCH_SEED, BENCH_SEED + 1)
STUDY_DURATION_S = 12.0 if SMOKE else 60.0

CAMPAIGN = CampaignSpec(
    name="noise_robustness",
    exp_ids=(EXP_ID,),
    policies=POLICIES,
    durations_s=(STUDY_DURATION_S,),
    dpm=(False,),
    seeds=SEEDS,
    sensor_noise_sigmas=SIGMAS_K,
)


def _mean(values):
    return sum(values) / len(values)


def test_noise_robustness(campaign_store, runner, results_dir):
    executor = CampaignExecutor(
        store=campaign_store, backend="serial", runner=runner,
    )
    run = executor.run_campaign(CAMPAIGN)
    assert not run.failed(), f"campaign runs failed: {run.failed()}"

    results = {}
    for spec in CAMPAIGN.expand():
        results[run_key(spec)] = campaign_store.load(run_key(spec))

    def seed_mean(policy, sigma, metric):
        values = []
        for spec in CAMPAIGN.expand():
            if spec.policy == policy and spec.sensor_noise_sigma == sigma:
                values.append(metric(summarize(results[run_key(spec)])))
        assert values, f"no runs for {policy} at sigma={sigma}"
        return _mean(values)

    fig = FigureSeries(
        "Sensor-noise robustness — EXP-4 hot-spot % vs sensor sigma "
        f"({STUDY_DURATION_S:.0f} s, {len(SEEDS)} seed(s))"
        + (" [SMOKE]" if SMOKE else ""),
        groups=[f"sigma={s:g}K" for s in SIGMAS_K],
    )
    payload = {
        "exp_id": EXP_ID,
        "sigmas_k": list(SIGMAS_K),
        "seeds": list(SEEDS),
        "duration_s": STUDY_DURATION_S,
        "smoke": SMOKE,
        "policies": {},
    }
    for policy in POLICIES:
        hot = [
            seed_mean(policy, s, lambda r: r.hot_spot_pct) for s in SIGMAS_K
        ]
        peak = [
            seed_mean(policy, s, lambda r: r.peak_temperature_c)
            for s in SIGMAS_K
        ]
        fig.add_series(f"{policy} hot%", hot)
        payload["policies"][policy] = {
            "hot_spot_pct": [round(v, 3) for v in hot],
            "peak_temperature_c": [round(v, 2) for v in peak],
            "hot_spot_drift_pct": round(hot[-1] - hot[0], 3),
        }

    emit(results_dir, "noise_robustness", fig.to_text())
    (results_dir / "BENCH_noise_robustness.json").write_text(
        json.dumps(payload, indent=2) + "\n"
    )

    # Sanity: the ideal-sensor column must reproduce the stored-run
    # ordering (adaptive policies at or below Default on hot spots),
    # and noise must not turn the study degenerate (metrics finite).
    ideal = {
        policy: payload["policies"][policy]["hot_spot_pct"][0]
        for policy in POLICIES
    }
    assert ideal["Adapt3D"] <= ideal["Default"] + 1e-9
    for policy in POLICIES:
        for value in payload["policies"][policy]["hot_spot_pct"]:
            assert 0.0 <= value <= 100.0
