"""Telemetry overhead benchmark: engine hot path with obs on and off.

Measures EXP-1..4 (Adapt3D, event heap + exponential solver — the
shipping configuration) in three telemetry states:

- ``off``     — ``EngineConfig.telemetry=None``, the default. The
  disabled path must stay inside the hot-path gate: null-object
  singletons for the lifecycle hooks plus plain-int micro counters mean
  there is nothing to branch on in the tick loop.
- ``metrics`` — registry + job stats + tick profiler (the ``campaign
  run --telemetry`` configuration).
- ``full``    — metrics plus the trace ring buffer (the ``repro
  trace`` configuration).

Gates (full runs only; REPRO_BENCH_SMOKE=1 skips the wall-clock
assertions for CI smoke): telemetry-off EXP-4 within the existing
hot-path gate (machine-scaled like bench_engine_hotpath.py), and full
telemetry overhead at or below 10% of the off cost.

Emits ``BENCH_obs.json`` and a sample Chrome trace
(``sample_trace.json``, Perfetto-loadable) into ``benchmarks/results/``;
the JSON is mirrored to the repo root on full runs.
"""

import gc
import json
import os
import random
import time
from dataclasses import replace
from pathlib import Path

import numpy as np

from repro.analysis.runner import ExperimentRunner, RunSpec
from repro.obs.telemetry import TelemetryConfig

from benchmarks.conftest import BENCH_SEED, emit

SMOKE = os.environ.get("REPRO_BENCH_SMOKE", "") not in ("", "0")

BENCH_SIM_S = 6.0 if SMOKE else 30.0
#: The gated quantity is a *ratio* of two cells, so both cells' best-of
#: must converge to their clean-host cost before the ratio is meaningful
#: — that takes far more rounds than a single-cell bench (one unluckily
#: fast "off" best inflates the overhead percentage and vice versa).
REPS = 1 if SMOKE else 15

#: The shipping hot-path gate for the telemetry-off configuration:
#: identical to bench_engine_hotpath.py's TARGET_EXP4_MS, because
#: "off" *is* the shipping hot-path configuration. The recorded
#: trajectory-machine cost is 0.249 ms/tick; the gate keeps the same
#: headroom the hot-path bench grants for host jitter.
OFF_TARGET_EXP4_MS = 0.28
ON_OVERHEAD_LIMIT_PCT = 10.0

#: PR 2 reference figures used for machine scaling (same scheme as
#: bench_engine_hotpath.py): hosts slower than the trajectory machine
#: scale the target by their measured cost of the reference configs.
PR2_SCAN_EXP4_MS = 0.57
PR2_HEAP_EXP4_MS = 0.37

STATES = (
    ("off", None),
    ("metrics", TelemetryConfig()),
    ("full", TelemetryConfig(trace=True)),
)

REPO_ROOT = Path(__file__).resolve().parents[1]


def _spec(exp_id: int) -> RunSpec:
    return RunSpec(
        exp_id=exp_id, policy="Adapt3D", duration_s=BENCH_SIM_S,
        seed=BENCH_SEED,
    )


def _measure(runner: ExperimentRunner) -> dict:
    """Per-round ms/tick samples per (stack, telemetry state).

    Returns ``{(exp_id, label): [ms_round0, ms_round1, ...]}``; callers
    take the best-of over rounds per cell.  Two defenses against a busy
    shared host: the visiting order is reshuffled every round (a
    periodic load pattern cannot alias with a fixed order and poison
    the same cell all REPS times), and a collect before each cell keeps
    one state's garbage from being timed in the next."""
    order = [
        (exp_id, label, telemetry)
        for exp_id in (1, 2, 3, 4)
        for label, telemetry in STATES
    ]
    rng = random.Random(BENCH_SEED)
    cells = {}
    for _ in range(REPS):
        rng.shuffle(order)
        for exp_id, label, telemetry in order:
            engine = runner.build_engine(_spec(exp_id))
            engine.config = replace(engine.config, telemetry=telemetry)
            gc.collect()
            start = time.perf_counter()
            result = engine.run()
            elapsed = time.perf_counter() - start
            ms = elapsed / result.n_ticks * 1000.0
            cells.setdefault((exp_id, label), []).append(ms)
    return cells




def _measure_references(runner: ExperimentRunner) -> dict:
    """EXP-4 reference configurations for machine scaling."""
    refs = {"scan": float("inf"), "implicit_heap": float("inf")}
    for _ in range(REPS):
        for label, loop, solver in (
            ("scan", "legacy_scan", "backward_euler"),
            ("implicit_heap", "event_heap", "backward_euler"),
        ):
            engine = runner.build_engine(_spec(4))
            engine.config = replace(
                engine.config, event_loop=loop, thermal_solver=solver
            )
            start = time.perf_counter()
            result = engine.run()
            elapsed = time.perf_counter() - start
            refs[label] = min(refs[label], elapsed / result.n_ticks * 1000.0)
    return refs


def test_obs_overhead(results_dir):
    runner = ExperimentRunner()
    cells = _measure(runner)
    refs = _measure_references(runner)

    per_exp = {}
    for exp_id in (1, 2, 3, 4):
        off = min(cells[(exp_id, "off")])
        metrics = min(cells[(exp_id, "metrics")])
        full = min(cells[(exp_id, "full")])
        per_exp[f"exp{exp_id}"] = {
            "off_ms_per_tick": round(off, 4),
            "metrics_ms_per_tick": round(metrics, 4),
            "full_ms_per_tick": round(full, 4),
            "metrics_overhead_pct": round(100.0 * (metrics / off - 1.0), 1),
            "full_overhead_pct": round(100.0 * (full / off - 1.0), 1),
        }

    # Non-perturbation spot check: full telemetry must stay bitwise
    # identical (the whole matrix lives in tests/test_engine_heap.py).
    check = replace(_spec(4), duration_s=6.0)
    a = runner.build_engine(check)
    b = runner.build_engine(check)
    b.config = replace(b.config, telemetry=TelemetryConfig(trace=True))
    result_a, result_b = a.run(), b.run()
    np.testing.assert_array_equal(result_a.unit_temps_k, result_b.unit_temps_k)
    assert result_a.energy_j == result_b.energy_j

    # Sample Chrome trace artifact (CI uploads it; Perfetto-loadable).
    trace = b.telemetry.trace
    sample_path = results_dir / "sample_trace.json"
    trace.write_chrome_trace(sample_path, result_b.core_names)
    sample = json.loads(sample_path.read_text())
    assert sample["traceEvents"], "sample trace must carry events"

    machine_scale = max(
        1.0,
        refs["scan"] / PR2_SCAN_EXP4_MS,
        refs["implicit_heap"] / PR2_HEAP_EXP4_MS,
    )
    exp4 = per_exp["exp4"]
    payload = {
        "smoke": SMOKE,
        "simulated_s": BENCH_SIM_S,
        "policy": "Adapt3D",
        "per_exp": per_exp,
        "reference_exp4": {k: round(v, 4) for k, v in refs.items()},
        "machine_scale": round(machine_scale, 3),
        "off_target_exp4_ms": OFF_TARGET_EXP4_MS,
        "on_overhead_limit_pct": ON_OVERHEAD_LIMIT_PCT,
        "trace_events_sample": len(sample["traceEvents"]),
    }
    text = json.dumps(payload, indent=2) + "\n"
    (results_dir / "BENCH_obs.json").write_text(text)
    if not SMOKE:
        (REPO_ROOT / "BENCH_obs.json").write_text(text)

    lines = [
        "Telemetry overhead (ms per 100 ms tick, best of "
        f"{REPS}, {BENCH_SIM_S:.0f} s simulated, Adapt3D)",
        f"{'stack':8s} {'off':>8s} {'metrics':>9s} {'full':>8s} "
        f"{'ovh':>7s}",
    ]
    for exp_id in (1, 2, 3, 4):
        row = per_exp[f"exp{exp_id}"]
        lines.append(
            f"EXP-{exp_id:<4d} {row['off_ms_per_tick']:8.3f} "
            f"{row['metrics_ms_per_tick']:9.3f} "
            f"{row['full_ms_per_tick']:8.3f} "
            f"{row['full_overhead_pct']:6.1f}%"
        )
    emit(results_dir, "obs_overhead", "\n".join(lines))

    if SMOKE:
        return

    off_ms = exp4["off_ms_per_tick"]
    assert off_ms <= OFF_TARGET_EXP4_MS * machine_scale, (
        f"telemetry-off EXP-4 {off_ms} ms/tick missed the "
        f"{OFF_TARGET_EXP4_MS} ms hot-path gate "
        f"(machine scale {machine_scale:.2f})"
    )
    assert exp4["full_overhead_pct"] <= ON_OVERHEAD_LIMIT_PCT, (
        f"full telemetry overhead {exp4['full_overhead_pct']}% exceeds "
        f"{ON_OVERHEAD_LIMIT_PCT}%"
    )
