"""Batched multi-run engine throughput: one fused tick loop vs replay.

Measures the campaign-shaped workload the batch engine exists for — a
16-seed EXP-4 Adapt3D sweep — four ways on the same specs:

- ``serial`` — one-by-one replay through the shipping serial engine
  (event heap + exponential propagator), the strongest serial baseline;
- ``scan`` — one-by-one replay through the retained legacy-scan loop
  (the pre-event-heap serial pipeline, kept selectable via
  ``EngineConfig(event_loop="legacy_scan")``);
- ``batch exact`` — :class:`BatchSimulationEngine` with column-exact
  dense products (bit-identical to ``serial``);
- ``batch gemm`` — the fused one-GEMM thermal propagation;
- ``batch span`` — ``fidelity="span"`` lanes on the gemm propagation:
  lazy per-core span execution, trusted completion events, and the
  across-lane probabilistic policy tick (docs/ENGINE.md);
- ``batch event`` — ``fidelity="event"`` lanes on the gemm
  propagation: event lanes ride the same span substrate inside a
  batch (the serial jump machinery stays out of the fused loop — the
  batch amortizes the tick boundary instead), so this row tracks that
  the event axis costs nothing when batched on busy workloads.

Where the eager ceiling comes from (measured on the bench machine, see
docs/ENGINE.md): a serial EXP-4 tick spends ~57% of its time in the
per-run scalar scheduler (interval sweep, dispatch, policy, workload
generator) that batching cannot amortize, so by Amdahl the *eager*
batch speedup over the shipping serial engine saturates near
``1 / 0.57 ~ 1.75x`` regardless of batch width — the measured 16-lane
figures are ~1.45x (exact) and ~1.6x (gemm). Span fidelity attacks the
scalar term itself instead of the batched boundary, which is what
breaks the cap: the measured 16-lane span+gemm figure is ~2.6x vs the
shipping serial engine (gated at 2.5x below). Against the legacy-scan
replay (the engine the ROADMAP's batching target was originally framed
against) the fused loop clears 3x. Every ratio is gated against its
own measured baseline so the gates stay machine-relative.

Emits a ``batch`` section merged into ``BENCH_engine.json`` (results
dir + repo-root mirror). ``REPRO_BENCH_SMOKE=1`` shortens the runs and
skips the timing gates (CI runs the bench for the artifact and the
bit-identity check, not for timings on shared runners).
"""

import json
import os
import time
from dataclasses import replace
from pathlib import Path

import numpy as np

from repro.analysis.runner import ExperimentRunner, RunSpec
from repro.sched.batch import BatchSimulationEngine

from benchmarks.conftest import BENCH_SEED, emit

SMOKE = os.environ.get("REPRO_BENCH_SMOKE", "") not in ("", "0")

N_SEEDS = 16
BENCH_SIM_S = 6.0 if SMOKE else 30.0
REPS = 1 if SMOKE else 2

#: Machine-relative acceptance ratios (see module docstring): the fused
#: batch measures ~2.9-3.2x against the legacy-scan serial replay on
#: the bench machine (gated with noise margin below — the container's
#: tick times swing ~15% run to run), and must keep a solid margin over
#: the shipping serial engine; the bit-exact mode may cost at most the
#: measured dense-product penalty.
GATE_GEMM_VS_SCAN = 2.6
GATE_GEMM_VS_SERIAL = 1.35
GATE_EXACT_VS_SERIAL = 1.2
#: The span-compiled scheduler fast path must clear the eager Amdahl
#: cap (~1.75x) with room to spare: measured ~2.6x on the bench
#: machine.
GATE_SPAN_VS_SERIAL = 2.5
#: Event lanes batch as span lanes on this busy sweep; the same gate
#: keeps the event axis from regressing the fused loop.
GATE_EVENT_VS_SERIAL = 2.5

REPO_ROOT = Path(__file__).resolve().parents[1]


def _specs():
    return [
        RunSpec(exp_id=4, policy="Adapt3D", duration_s=BENCH_SIM_S,
                seed=BENCH_SEED + i)
        for i in range(N_SEEDS)
    ]


def test_batch_engine_throughput(results_dir):
    runner = ExperimentRunner()
    specs = _specs()
    runner.run(specs[0])  # warm the assembly/index caches

    def replay_serial():
        for spec in specs:
            runner.run(spec)

    def replay_scan():
        for spec in specs:
            engine = runner.build_engine(spec)
            engine.config = replace(
                engine.config, event_loop="legacy_scan",
                thermal_solver="backward_euler",
            )
            engine.run()

    def run_batch(propagation, fidelity="eager"):
        lanes = []
        for spec in specs:
            engine = runner.build_engine(spec)
            if fidelity != "eager":
                engine.config = replace(engine.config, fidelity=fidelity)
            lanes.append(engine)
        BatchSimulationEngine(lanes, propagation=propagation).run()

    configs = {
        "serial": replay_serial,
        "scan": replay_scan,
        "batch_exact": lambda: run_batch("exact"),
        "batch_gemm": lambda: run_batch("gemm"),
        "batch_span": lambda: run_batch("gemm", fidelity="span"),
        "batch_event": lambda: run_batch("gemm", fidelity="event"),
    }
    # Interleaved rounds: each round times every config once, the
    # per-config min drops rounds hit by transient machine load.
    rows = {name: float("inf") for name in configs}
    for _ in range(REPS):
        for name, fn in configs.items():
            start = time.perf_counter()
            fn()
            rows[name] = min(rows[name], time.perf_counter() - start)
    serial_s = rows["serial"]
    scan_s = rows["scan"]
    exact_s = rows["batch_exact"]
    gemm_s = rows["batch_gemm"]
    span_s = rows["batch_span"]
    event_s = rows["batch_event"]

    n_runs = len(specs)
    runs_per_s = {name: n_runs / secs for name, secs in rows.items()}

    # Bit-identity spot check (always, smoke included): a short batch in
    # exact mode must reproduce serial runs exactly. The full matrix
    # lives in tests/test_engine_batch.py.
    check_specs = [replace(spec, duration_s=3.0) for spec in specs[:4]]
    serial_results = [runner.run(spec) for spec in check_specs]
    lanes = [runner.build_engine(spec) for spec in check_specs]
    for a, b in zip(serial_results,
                    BatchSimulationEngine(lanes, propagation="exact").run()):
        np.testing.assert_array_equal(a.unit_temps_k, b.unit_temps_k)
        assert a.energy_j == b.energy_j

    # Span/event tolerance spot check: both fast paths must track the
    # serial reference within the documented contract (full matrices in
    # tests/test_engine_span.py and tests/test_engine_event.py).
    for fidelity in ("span", "event"):
        fast_lanes = []
        for spec in check_specs:
            engine = runner.build_engine(spec)
            engine.config = replace(engine.config, fidelity=fidelity)
            fast_lanes.append(engine)
        for a, b in zip(serial_results,
                        BatchSimulationEngine(fast_lanes,
                                              propagation="gemm").run()):
            np.testing.assert_allclose(
                a.unit_temps_k, b.unit_temps_k, rtol=0.0, atol=1e-3
            )
            np.testing.assert_array_equal(a.vf_indices, b.vf_indices)
            assert len(a.completed_jobs()) == len(b.completed_jobs())

    payload_section = {
        "n_seeds": n_runs,
        "simulated_s": BENCH_SIM_S,
        "policy": "Adapt3D",
        "exp_id": 4,
        "smoke": SMOKE,
        "runs_per_s": {k: round(v, 2) for k, v in runs_per_s.items()},
        "speedup_gemm_vs_serial": round(serial_s / gemm_s, 2),
        "speedup_exact_vs_serial": round(serial_s / exact_s, 2),
        "speedup_gemm_vs_scan": round(scan_s / gemm_s, 2),
        "speedup_span_vs_serial": round(serial_s / span_s, 2),
        "speedup_event_vs_serial": round(serial_s / event_s, 2),
        "gates": {
            "gemm_vs_scan": GATE_GEMM_VS_SCAN,
            "gemm_vs_serial": GATE_GEMM_VS_SERIAL,
            "exact_vs_serial": GATE_EXACT_VS_SERIAL,
            "span_vs_serial": GATE_SPAN_VS_SERIAL,
            "event_vs_serial": GATE_EVENT_VS_SERIAL,
        },
    }

    # Merge into BENCH_engine.json next to the hot-path section so the
    # whole engine perf story lives in one artifact; fall back to the
    # tracked repo-root mirror when results/ starts clean, and never
    # overwrite that mirror with smoke-mode figures.
    merged = {}
    existing = results_dir / "BENCH_engine.json"
    source = existing if existing.exists() else REPO_ROOT / "BENCH_engine.json"
    if source.exists():
        merged = json.loads(source.read_text())
    merged["batch"] = payload_section
    text = json.dumps(merged, indent=2) + "\n"
    existing.write_text(text)
    if not SMOKE:
        (REPO_ROOT / "BENCH_engine.json").write_text(text)

    lines = [
        f"Batched multi-run engine ({n_runs}-seed EXP-4 Adapt3D sweep, "
        f"{BENCH_SIM_S:.0f} s simulated each, best of {REPS})"
        + (" [SMOKE]" if SMOKE else ""),
        f"{'config':14s} {'total s':>9s} {'runs/s':>8s} {'speedup':>8s}",
    ]
    for name in ("scan", "serial", "batch_exact", "batch_gemm",
                 "batch_span", "batch_event"):
        lines.append(
            f"{name:14s} {rows[name]:9.2f} {runs_per_s[name]:8.2f} "
            f"{serial_s / rows[name]:7.2f}x"
        )
    lines.append(
        f"gemm vs scan replay: {scan_s / gemm_s:.2f}x "
        f"(gate {GATE_GEMM_VS_SCAN}x); "
        f"gemm vs serial: {serial_s / gemm_s:.2f}x "
        f"(gate {GATE_GEMM_VS_SERIAL}x); "
        f"span vs serial: {serial_s / span_s:.2f}x "
        f"(gate {GATE_SPAN_VS_SERIAL}x)"
    )
    emit(results_dir, "batch_engine", "\n".join(lines))

    if SMOKE:
        return
    assert scan_s / gemm_s >= GATE_GEMM_VS_SCAN, (
        f"fused batch {scan_s / gemm_s:.2f}x vs legacy-scan replay missed "
        f"the {GATE_GEMM_VS_SCAN}x gate"
    )
    assert serial_s / gemm_s >= GATE_GEMM_VS_SERIAL, (
        f"fused batch {serial_s / gemm_s:.2f}x vs serial replay missed "
        f"the {GATE_GEMM_VS_SERIAL}x gate"
    )
    assert serial_s / exact_s >= GATE_EXACT_VS_SERIAL, (
        f"exact batch {serial_s / exact_s:.2f}x vs serial replay missed "
        f"the {GATE_EXACT_VS_SERIAL}x gate"
    )
    assert serial_s / span_s >= GATE_SPAN_VS_SERIAL, (
        f"span batch {serial_s / span_s:.2f}x vs serial replay missed "
        f"the {GATE_SPAN_VS_SERIAL}x gate"
    )
    assert serial_s / event_s >= GATE_EVENT_VS_SERIAL, (
        f"event batch {serial_s / event_s:.2f}x vs serial replay missed "
        f"the {GATE_EVENT_VS_SERIAL}x gate"
    )
