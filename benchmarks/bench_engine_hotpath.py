"""Engine hot-path benchmark: solver x event-loop configurations.

Runs EXP-1..4 through three configurations (same specs, same seeds):

- ``legacy scan`` — the original all-core rescan loop with the
  dict-based power pipeline and the backward-Euler solver (the PR 2
  reference pipeline, kept behind ``EngineConfig(event_loop=...)``);
- ``implicit heap`` — the event-heap loop with backward Euler, keeping
  the implicit solver path exercised and its regressions visible;
- ``exponential heap`` — the shipping default: event-heap loop plus the
  exact exponential propagator.

Also reports the engine-assembly reuse win from the runner's
ThermalAssembly cache (which now amortizes the ``expm`` build too).

Emits ``BENCH_engine.json`` into ``benchmarks/results/`` and mirrors it
to the repo root so the perf trajectory is tracked at top level.

Reference points on the ROADMAP trajectory machine: EXP-4 cost
0.85 ms/tick at seed, 0.61 after PR 1, 0.37 after PR 2 (event heap).
The acceptance gate for this rework is EXP-4 at or below 0.28 ms/tick
(>= 25% below PR 2), scaled by the measured legacy-scan cost on hosts
slower than the reference machine.
"""

import json
import os
import time
from dataclasses import replace
from pathlib import Path

import numpy as np

from repro.analysis.runner import ExperimentRunner, RunSpec
from repro.campaign.spec import run_key

from benchmarks.conftest import BENCH_SEED, emit

#: REPRO_BENCH_SMOKE=1 shortens the measurement and skips the timing
#: gates — CI runs the bench on every push for the BENCH_engine.json
#: artifact and the bit-identity spot checks, not for wall-clock
#: assertions on shared runners.
SMOKE = os.environ.get("REPRO_BENCH_SMOKE", "") not in ("", "0")

BENCH_SIM_S = 6.0 if SMOKE else 30.0  # 300 ticks per full measurement
# 5 interleaved rounds: the per-cell min needs several chances to land
# in a quiet slice of a shared machine (cgroup throttling after a
# bursty neighbour inflates whole rounds by tens of percent).
REPS = 1 if SMOKE else 5
#: PR 2's recorded EXP-4 figures on the trajectory machine.
PR2_HEAP_EXP4_MS = 0.37
PR2_SCAN_EXP4_MS = 0.57
TARGET_EXP4_MS = 0.28

CONFIGS = (
    ("scan", "legacy_scan", "backward_euler"),
    ("implicit_heap", "event_heap", "backward_euler"),
    ("exponential_heap", "event_heap", "exponential"),
)

#: Idle-heavy scenario for the event-fidelity bench: EXP-4 under the
#: plain load balancer with DPM and a light two-job mix (~2% core
#: utilization), so most ticks are event-free and the event loop's
#: heap-to-heap jumps carry the run. The gate is machine-relative by
#: construction (both columns are measured on the same host in the
#: same interleaved rounds).
IDLE_MIX = (("gzip", 1), ("MPlayer", 1))
GATE_EVENT_VS_SERIAL = 5.0
STRETCH_EVENT_VS_SERIAL = 10.0

REPO_ROOT = Path(__file__).resolve().parents[1]


def _spec(exp_id: int) -> RunSpec:
    return RunSpec(
        exp_id=exp_id, policy="Adapt3D", duration_s=BENCH_SIM_S,
        seed=BENCH_SEED,
    )


def _measure_cells(runner: ExperimentRunner) -> dict:
    """Best-of-REPS ms/tick for every (stack, config) cell.

    Rounds are interleaved — each round measures every cell once — so a
    transient load spike on a shared machine degrades one *round*, not
    one config's entire measurement (the per-cell min then drops it).
    """
    cells = {}
    for _ in range(REPS):
        for exp_id in (1, 2, 3, 4):
            for label, loop, solver in CONFIGS:
                engine = runner.build_engine(_spec(exp_id))
                engine.config = replace(
                    engine.config, event_loop=loop, thermal_solver=solver
                )
                start = time.perf_counter()
                result = engine.run()
                elapsed = time.perf_counter() - start
                key = (exp_id, label)
                ms = elapsed / result.n_ticks * 1000.0
                cells[key] = min(cells.get(key, float("inf")), ms)
    return cells


def test_engine_hotpath(results_dir):
    runner = ExperimentRunner()

    # Assembly reuse: first build pays network assembly, LU
    # factorization and the expm propagator; subsequent builds on the
    # same (exp, grid) reuse all of it.
    start = time.perf_counter()
    runner.build_engine(_spec(4))
    first_build_ms = (time.perf_counter() - start) * 1000.0
    start = time.perf_counter()
    for _ in range(5):
        runner.build_engine(_spec(4))
    cached_build_ms = (time.perf_counter() - start) * 1000.0 / 5

    cells = _measure_cells(runner)
    per_exp = {}
    for exp_id in (1, 2, 3, 4):
        row = {}
        for label, _, _ in CONFIGS:
            row[f"{label}_ms_per_tick"] = round(cells[(exp_id, label)], 4)
        row["drop_vs_scan_pct"] = round(
            100.0
            * (1.0 - row["exponential_heap_ms_per_tick"]
               / row["scan_ms_per_tick"]),
            1,
        )
        per_exp[f"exp{exp_id}"] = row

    # The two loops must agree bit for bit under every solver (spot
    # check; the full matrix lives in tests/test_engine_heap.py).
    for solver in ("exponential", "backward_euler"):
        check = replace(_spec(4), duration_s=6.0, thermal_solver=solver)
        a = runner.build_engine(check)
        a.config = replace(a.config, event_loop="event_heap")
        b = runner.build_engine(check)
        b.config = replace(b.config, event_loop="legacy_scan")
        np.testing.assert_array_equal(
            a.run().unit_temps_k, b.run().unit_temps_k
        )

    exp4 = per_exp["exp4"]
    exp4_ms = exp4["exponential_heap_ms_per_tick"]
    payload = {
        "smoke": SMOKE,
        "simulated_s": BENCH_SIM_S,
        "policy": "Adapt3D",
        "run_key_exp4": run_key(_spec(4)),
        "per_exp": per_exp,
        "pr2_heap_exp4_ms": PR2_HEAP_EXP4_MS,
        "exp4_drop_vs_pr2_heap_pct": round(
            100.0 * (1.0 - exp4_ms / PR2_HEAP_EXP4_MS), 1
        ),
        "target_exp4_ms": TARGET_EXP4_MS,
        "assembly_first_build_ms": round(first_build_ms, 2),
        "assembly_cached_build_ms": round(cached_build_ms, 2),
    }
    # Preserve the batch-engine section bench_batch_engine.py merges
    # into the same artifact (collection order is alphabetical, so the
    # batch bench usually runs first); fall back to the tracked
    # repo-root mirror when results/ starts clean so a standalone run
    # does not silently drop the recorded batch numbers.
    existing = results_dir / "BENCH_engine.json"
    source = existing if existing.exists() else REPO_ROOT / "BENCH_engine.json"
    if source.exists():
        previous = json.loads(source.read_text())
        for section in ("batch", "event"):
            if section in previous:
                payload[section] = previous[section]
    text = json.dumps(payload, indent=2) + "\n"
    existing.write_text(text)
    # Mirror to the repo root so the perf trajectory is tracked at top
    # level alongside BENCH_campaign.json — full runs only; smoke-mode
    # figures must never replace the tracked trajectory numbers.
    if not SMOKE:
        (REPO_ROOT / "BENCH_engine.json").write_text(text)

    lines = [
        "Engine hot path (ms per 100 ms tick, best of "
        f"{REPS}, {BENCH_SIM_S:.0f} s simulated, Adapt3D)",
        f"{'stack':8s} {'scan':>8s} {'implicit':>9s} {'expm':>8s} {'drop':>7s}",
    ]
    for exp_id in (1, 2, 3, 4):
        row = per_exp[f"exp{exp_id}"]
        lines.append(
            f"EXP-{exp_id:<4d} {row['scan_ms_per_tick']:8.3f} "
            f"{row['implicit_heap_ms_per_tick']:9.3f} "
            f"{row['exponential_heap_ms_per_tick']:8.3f} "
            f"{row['drop_vs_scan_pct']:6.1f}%"
        )
    lines.append(
        f"assembly build: first {first_build_ms:.1f} ms, "
        f"cached {cached_build_ms:.1f} ms"
    )
    emit(results_dir, "engine_hotpath", "\n".join(lines))

    if SMOKE:
        return

    # Acceptance: EXP-4 at or below 0.28 ms/tick with the shipping
    # configuration — on hosts slower than the trajectory machine the
    # target scales with the measured cost of the retained reference
    # configurations (scan and implicit heap; the max of the two tracks
    # whichever reveals the slowdown).
    machine_scale = max(
        1.0,
        exp4["scan_ms_per_tick"] / PR2_SCAN_EXP4_MS,
        exp4["implicit_heap_ms_per_tick"] / PR2_HEAP_EXP4_MS,
    )
    assert exp4_ms <= TARGET_EXP4_MS * machine_scale, (
        f"EXP-4 exponential+heap {exp4_ms} ms/tick missed the "
        f"{TARGET_EXP4_MS} ms target (machine scale {machine_scale:.2f})"
    )
    # The shipping config must never lose to the retained ones.
    for exp_id in (1, 2, 3, 4):
        row = per_exp[f"exp{exp_id}"]
        assert (
            row["exponential_heap_ms_per_tick"]
            <= row["implicit_heap_ms_per_tick"] * 1.05
        )
        assert (
            row["implicit_heap_ms_per_tick"]
            <= row["scan_ms_per_tick"] * 1.05
        )


def test_engine_event_idle(results_dir):
    """Event-driven time advance on the idle-heavy scenario.

    Measures the shipping serial engine (eager fidelity, event heap +
    exponential propagator) against ``fidelity="event"`` on the same
    spec, interleaved best-of-REPS, and gates the ratio at
    ``GATE_EVENT_VS_SERIAL`` (stretch ``STRETCH_EVENT_VS_SERIAL``).
    The tolerance spot check always runs, smoke included; the full
    differential matrix lives in tests/test_engine_event.py.
    """
    runner = ExperimentRunner()
    spec = RunSpec(
        exp_id=4, policy="Default", duration_s=BENCH_SIM_S,
        benchmark_mix=IDLE_MIX, with_dpm=True, seed=BENCH_SEED,
    )
    times = {"serial": float("inf"), "event": float("inf")}
    results = {}
    for _ in range(REPS):
        for label, fidelity in (("serial", "eager"), ("event", "event")):
            engine = runner.build_engine(spec)
            if fidelity != "eager":
                engine.config = replace(engine.config, fidelity=fidelity)
            start = time.perf_counter()
            result = engine.run()
            times[label] = min(times[label], time.perf_counter() - start)
            results[label] = result

    # Event must honour the span tolerance contract on the exact runs
    # just measured: discrete planes bitwise, thermal within 1e-3 K,
    # energy within 0.1%.
    a, b = results["serial"], results["event"]
    np.testing.assert_array_equal(a.vf_indices, b.vf_indices)
    np.testing.assert_array_equal(a.core_states, b.core_states)
    np.testing.assert_allclose(
        a.unit_temps_k, b.unit_temps_k, rtol=0.0, atol=1e-3
    )
    assert abs(a.energy_j - b.energy_j) <= 1e-3 * abs(a.energy_j)

    n_ticks = a.n_ticks
    speedup = times["serial"] / times["event"]
    section = {
        "smoke": SMOKE,
        "simulated_s": BENCH_SIM_S,
        "policy": "Default",
        "exp_id": 4,
        "benchmark_mix": "gzip+MPlayer",
        "with_dpm": True,
        "serial_ms_per_tick": round(times["serial"] / n_ticks * 1000.0, 4),
        "event_ms_per_tick": round(times["event"] / n_ticks * 1000.0, 4),
        "speedup_event_vs_serial": round(speedup, 2),
        "gate_event_vs_serial": GATE_EVENT_VS_SERIAL,
        "stretch_event_vs_serial": STRETCH_EVENT_VS_SERIAL,
    }

    # Merge alongside the hot-path and batch sections (results dir +
    # repo-root mirror; smoke figures never replace the tracked ones).
    merged = {}
    existing = results_dir / "BENCH_engine.json"
    source = existing if existing.exists() else REPO_ROOT / "BENCH_engine.json"
    if source.exists():
        merged = json.loads(source.read_text())
    merged["event"] = section
    text = json.dumps(merged, indent=2) + "\n"
    existing.write_text(text)
    if not SMOKE:
        (REPO_ROOT / "BENCH_engine.json").write_text(text)

    emit(
        results_dir,
        "engine_event_idle",
        (
            "Event fidelity, idle-heavy EXP-4 (Default + DPM, "
            f"gzip+MPlayer, {BENCH_SIM_S:.0f} s simulated, best of {REPS})"
            + (" [SMOKE]" if SMOKE else "")
            + f"\nserial {times['serial'] * 1000.0:8.1f} ms "
            f"({section['serial_ms_per_tick']:.3f} ms/tick)"
            + f"\nevent  {times['event'] * 1000.0:8.1f} ms "
            f"({section['event_ms_per_tick']:.3f} ms/tick)"
            + f"\nspeedup {speedup:.2f}x (gate {GATE_EVENT_VS_SERIAL}x, "
            f"stretch {STRETCH_EVENT_VS_SERIAL}x)"
        ),
    )

    if SMOKE:
        return
    assert speedup >= GATE_EVENT_VS_SERIAL, (
        f"event fidelity {speedup:.2f}x vs the shipping serial engine "
        f"missed the {GATE_EVENT_VS_SERIAL}x gate on the idle-heavy "
        "scenario"
    )
