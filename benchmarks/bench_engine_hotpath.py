"""Engine hot-path benchmark: legacy scan loop vs event-heap loop.

Runs EXP-1..4 through both interval loops (same specs, same seeds) and
reports per-tick wall time, plus the engine-assembly reuse win from the
runner's ThermalAssembly cache. Emits ``BENCH_engine.json`` so the
perf trajectory of the tick loop is tracked alongside the campaign
throughput numbers.

Reference point: before the event-heap rework the EXP-4 tick cost was
0.61 ms on the ROADMAP baseline machine (the legacy loop measured here
reproduces that pipeline). The acceptance gate is a >= 30% drop for
EXP-4 — checked against the measured legacy loop, with the recorded
0.61 ms figure as a cross-machine fallback for fast hosts.
"""

import json
import time
from dataclasses import replace

import numpy as np

from repro.analysis.runner import ExperimentRunner, RunSpec
from repro.campaign.spec import run_key

from benchmarks.conftest import BENCH_SEED, emit

BENCH_SIM_S = 30.0  # 300 ticks per measurement
REPS = 3
ROADMAP_BASELINE_EXP4_MS = 0.61
TARGET_DROP = 0.30


def _spec(exp_id: int) -> RunSpec:
    return RunSpec(
        exp_id=exp_id, policy="Adapt3D", duration_s=BENCH_SIM_S,
        seed=BENCH_SEED,
    )


def _ms_per_tick(runner: ExperimentRunner, spec: RunSpec, loop: str) -> float:
    best = float("inf")
    for _ in range(REPS):
        engine = runner.build_engine(spec)
        engine.config = replace(engine.config, event_loop=loop)
        start = time.perf_counter()
        result = engine.run()
        best = min(best, time.perf_counter() - start)
    return best / result.n_ticks * 1000.0


def test_engine_hotpath(results_dir):
    runner = ExperimentRunner()

    # Assembly reuse: first build pays network assembly + LU
    # factorization; subsequent builds on the same (exp, grid) reuse it.
    start = time.perf_counter()
    runner.build_engine(_spec(4))
    first_build_ms = (time.perf_counter() - start) * 1000.0
    start = time.perf_counter()
    for _ in range(5):
        runner.build_engine(_spec(4))
    cached_build_ms = (time.perf_counter() - start) * 1000.0 / 5

    per_exp = {}
    for exp_id in (1, 2, 3, 4):
        spec = _spec(exp_id)
        scan_ms = _ms_per_tick(runner, spec, "legacy_scan")
        heap_ms = _ms_per_tick(runner, spec, "event_heap")
        per_exp[f"exp{exp_id}"] = {
            "scan_ms_per_tick": round(scan_ms, 4),
            "heap_ms_per_tick": round(heap_ms, 4),
            "drop_pct": round(100.0 * (1.0 - heap_ms / scan_ms), 1),
        }

    # The two loops must agree bit for bit (spot check; the full matrix
    # lives in tests/test_engine_heap.py under -m slow).
    check = RunSpec(exp_id=4, policy="Adapt3D", duration_s=6.0,
                    seed=BENCH_SEED)
    a = runner.build_engine(check)
    a.config = replace(a.config, event_loop="event_heap")
    b = runner.build_engine(check)
    b.config = replace(b.config, event_loop="legacy_scan")
    np.testing.assert_array_equal(a.run().unit_temps_k, b.run().unit_temps_k)

    exp4 = per_exp["exp4"]
    payload = {
        "simulated_s": BENCH_SIM_S,
        "policy": "Adapt3D",
        "run_key_exp4": run_key(_spec(4)),
        "per_exp": per_exp,
        "roadmap_baseline_exp4_ms": ROADMAP_BASELINE_EXP4_MS,
        "exp4_drop_vs_roadmap_pct": round(
            100.0
            * (1.0 - exp4["heap_ms_per_tick"] / ROADMAP_BASELINE_EXP4_MS),
            1,
        ),
        "assembly_first_build_ms": round(first_build_ms, 2),
        "assembly_cached_build_ms": round(cached_build_ms, 2),
    }
    (results_dir / "BENCH_engine.json").write_text(
        json.dumps(payload, indent=2) + "\n"
    )

    lines = [
        "Engine hot path (ms per 100 ms tick, best of "
        f"{REPS}, {BENCH_SIM_S:.0f} s simulated, Adapt3D)",
        f"{'stack':8s} {'scan':>8s} {'heap':>8s} {'drop':>7s}",
    ]
    for exp_id in (1, 2, 3, 4):
        row = per_exp[f"exp{exp_id}"]
        lines.append(
            f"EXP-{exp_id:<4d} {row['scan_ms_per_tick']:8.3f} "
            f"{row['heap_ms_per_tick']:8.3f} {row['drop_pct']:6.1f}%"
        )
    lines.append(
        f"assembly build: first {first_build_ms:.1f} ms, "
        f"cached {cached_build_ms:.1f} ms"
    )
    emit(results_dir, "engine_hotpath", "\n".join(lines))

    # Acceptance: EXP-4 per-tick cost down >= 30% from the pre-rework
    # loop — measured locally, or against the recorded 0.61 ms baseline
    # on machines whose legacy loop already runs faster than that.
    baseline = max(exp4["scan_ms_per_tick"], ROADMAP_BASELINE_EXP4_MS)
    assert exp4["heap_ms_per_tick"] <= (1.0 - TARGET_DROP) * baseline, (
        f"EXP-4 heap loop {exp4['heap_ms_per_tick']} ms/tick did not drop "
        f">= {TARGET_DROP:.0%} from the {baseline} ms baseline"
    )
    # And the heap loop must never lose to the scan loop elsewhere.
    for exp_id in (1, 2, 3):
        row = per_exp[f"exp{exp_id}"]
        assert row["heap_ms_per_tick"] <= row["scan_ms_per_tick"] * 1.05
