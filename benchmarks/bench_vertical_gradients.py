"""§V-C claim regeneration: vertical gradients stay within a few degrees.

The paper investigated vertical (inter-tier) gradients for TSV
reliability and found them "limited to a few degrees only, due to the
fact that the interlayer material is thin and has sufficient
conductivity". This bench measures the worst inter-tier cell gradient
over a Default run on every stack.
"""

import pytest

from repro.analysis.runner import ExperimentRunner, RunSpec
from repro.analysis.tables import format_table

from benchmarks.conftest import BENCH_SEED, emit


def build_table(runner):
    rows = []
    for exp_id in (1, 2, 3, 4):
        engine = runner.build_engine(
            RunSpec(exp_id=exp_id, policy="Default", duration_s=30.0,
                    seed=BENCH_SEED)
        )
        # Sample the vertical gradients after every thermal step (the
        # event-heap loop steps through step_vector, the legacy loop
        # through step — hook both).
        original_step = engine.thermal.step
        original_step_vector = engine.thermal.step_vector
        samples = []

        def sample():
            samples.append(max(engine.thermal.vertical_gradients()))

        def step(powers):
            original_step(powers)
            sample()

        def step_vector(unit_power_vec):
            original_step_vector(unit_power_vec)
            sample()

        engine.thermal.step = step
        engine.thermal.step_vector = step_vector
        engine.run()
        rows.append([f"EXP{exp_id}", round(max(samples), 3)])
    return rows


def test_vertical_gradients_few_degrees(benchmark, results_dir, runner):
    rows = benchmark.pedantic(build_table, args=(runner,), rounds=1, iterations=1)
    text = format_table(
        ["stack", "worst inter-tier gradient (C)"],
        rows,
        title="§V-C — vertical gradients between adjacent tiers (Default)",
    )
    emit(results_dir, "vertical_gradients", text)

    # "A few degrees" holds for the paper's stacks; EXP-4 (mirrored
    # cores directly over caches, hottest operating point) peaks at
    # ~9 C in our calibration — still far below the in-layer gradients.
    for row in rows:
        assert row[1] < 12.0, row
    assert rows[0][1] < 4.0  # EXP-1, the paper's baseline stack
