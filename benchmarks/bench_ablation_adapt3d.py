"""Ablation: Adapt3D's β constants and history-window length.

The paper fixes β_inc = 0.01, β_dec = 0.1 and a 10-sample history
window, noting "other β and history window length values can be set,
depending on the system and applications". This bench sweeps both on
the EXP-4 stack (with DPM) and reports hot-spot and gradient outcomes,
plus the layer-blind AdaptRand reference.
"""

import pytest

from repro.analysis.runner import ExperimentRunner, RunSpec
from repro.analysis.tables import format_table
from repro.core.adapt3d import Adapt3D
from repro.metrics.report import summarize

from benchmarks.conftest import BENCH_DURATION_S, BENCH_SEED, emit

BETA_SWEEP = [
    (0.01, 0.1),   # paper values
    (0.001, 0.01),
    (0.05, 0.5),
]
WINDOW_SWEEP = [5, 10, 20]


def run_variant(runner, beta_inc, beta_dec, window):
    spec = RunSpec(
        exp_id=4, policy="Adapt3D", duration_s=BENCH_DURATION_S,
        with_dpm=True, seed=BENCH_SEED,
    )
    engine = runner.build_engine(spec)
    engine.policy = Adapt3D(
        beta_inc=beta_inc, beta_dec=beta_dec, history_window=window
    )
    engine.policy.attach(engine.system_view)
    return engine.run()


def build_table(runner):
    rows = []
    for beta_inc, beta_dec in BETA_SWEEP:
        for window in WINDOW_SWEEP:
            report = summarize(run_variant(runner, beta_inc, beta_dec, window))
            rows.append(
                [
                    beta_inc,
                    beta_dec,
                    window,
                    round(report.hot_spot_pct, 2),
                    round(report.gradient_pct, 2),
                    round(report.peak_temperature_c, 1),
                ]
            )
    return rows


def test_ablation_adapt3d_parameters(benchmark, results_dir, runner, get_result):
    rows = benchmark.pedantic(build_table, args=(runner,), rounds=1, iterations=1)
    default_report = summarize(get_result(4, "Default", True))
    text = format_table(
        ["beta_inc", "beta_dec", "window", "hot%", "grad>15C%", "peak C"],
        rows,
        title=(
            "Ablation — Adapt3D beta / history-window sweep on EXP-4 (DPM)\n"
            f"(Default reference: hot={default_report.hot_spot_pct:.2f}%, "
            f"grad={default_report.gradient_pct:.2f}%)"
        ),
    )
    emit(results_dir, "ablation_adapt3d", text)

    # Every parameterization must still beat Default on gradients — the
    # mechanism is robust to the constants, as the paper asserts.
    for row in rows:
        assert row[4] <= default_report.gradient_pct + 1.0
