"""Ablation: Adapt3D's β constants and history-window length.

The paper fixes β_inc = 0.01, β_dec = 0.1 and a 10-sample history
window, noting "other β and history window length values can be set,
depending on the system and applications". This bench sweeps both on
the EXP-4 stack (with DPM) and reports hot-spot and gradient outcomes.

The sweep is one declarative campaign: each variant is a ``RunSpec``
whose ``policy_params`` parameterize the Adapt3D constructor, plus the
Default reference from the grid axes — so the whole study is
content-hashed, resumable, and parallelizable like any other campaign.
"""

import pytest

from repro.campaign import CampaignSpec, run_key
from repro.metrics.report import summarize

from benchmarks.conftest import bench_spec, emit
from repro.analysis.tables import format_table

BETA_SWEEP = [
    (0.01, 0.1),   # paper values
    (0.001, 0.01),
    (0.05, 0.5),
]
WINDOW_SWEEP = [5, 10, 20]

VARIANTS = [
    bench_spec(
        4, "Adapt3D", True,
        policy_params=(
            ("beta_inc", beta_inc),
            ("beta_dec", beta_dec),
            ("history_window", window),
        ),
    )
    for beta_inc, beta_dec in BETA_SWEEP
    for window in WINDOW_SWEEP
]

CAMPAIGN = CampaignSpec(
    name="ablation_adapt3d",
    exp_ids=(4,),
    policies=("Default",),          # the reference run
    durations_s=(VARIANTS[0].duration_s,),
    dpm=(True,),
    seeds=(VARIANTS[0].seed,),
    extra_runs=tuple(VARIANTS),
)


def build_table(executor, store):
    run = executor.run_campaign(CAMPAIGN)
    assert not run.failed(), f"campaign runs failed: {run.failed()}"
    rows = []
    for spec in VARIANTS:
        params = dict(spec.policy_params)
        report = summarize(store.load(run_key(spec)))
        rows.append(
            [
                params["beta_inc"],
                params["beta_dec"],
                params["history_window"],
                round(report.hot_spot_pct, 2),
                round(report.gradient_pct, 2),
                round(report.peak_temperature_c, 1),
            ]
        )
    return rows


def test_ablation_adapt3d_parameters(
    benchmark, results_dir, campaign_executor, campaign_store, get_result
):
    rows = benchmark.pedantic(
        build_table, args=(campaign_executor, campaign_store), rounds=1,
        iterations=1,
    )
    default_report = summarize(get_result(4, "Default", True))
    text = format_table(
        ["beta_inc", "beta_dec", "window", "hot%", "grad>15C%", "peak C"],
        rows,
        title=(
            "Ablation — Adapt3D beta / history-window sweep on EXP-4 (DPM)\n"
            f"(Default reference: hot={default_report.hot_spot_pct:.2f}%, "
            f"grad={default_report.gradient_pct:.2f}%)"
        ),
    )
    emit(results_dir, "ablation_adapt3d", text)

    # Every parameterization must still beat Default on gradients — the
    # mechanism is robust to the constants, as the paper asserts.
    for row in rows:
        assert row[4] <= default_report.gradient_pct + 1.0
