"""Figure 6 regeneration: thermal cycles with DPM (EXP1 and EXP3).

Percentage of sliding-window (core, window) samples whose ΔT exceeds
20 C (JEP122C: failures are 16x more frequent at ΔT = 20 C than 10 C).
The paper reports EXP1 and EXP3; we add EXP4 where sleep/wake cycling
is strongest in our calibration, and also report a 10 C threshold
because our per-core swing amplitudes are smaller than the paper's
testbed (see EXPERIMENTS.md).
"""

import pytest

from repro.analysis.figures import FigureSeries
from repro.core.registry import policy_names
from repro.metrics.cycles import thermal_cycle_fraction

from benchmarks.conftest import emit

EXPS = (1, 3, 4)
CALIBRATED_THRESHOLD_K = 10.0


def build_figure(get_result):
    policies = policy_names()
    fig = FigureSeries(
        "Figure 6 — thermal cycles (with DPM): % of sliding windows "
        "with per-core dT above the threshold",
        groups=policies,
    )
    for exp in EXPS:
        for threshold, label in ((20.0, ">20C"), (CALIBRATED_THRESHOLD_K, ">10C")):
            fig.add_series(
                f"EXP{exp} {label}",
                [
                    100.0
                    * thermal_cycle_fraction(
                        get_result(exp, policy, True).core_peak_temps_k,
                        threshold_k=threshold,
                    )
                    for policy in policies
                ],
            )
    return fig


def test_fig6_thermal_cycles(benchmark, results_dir, get_result):
    fig = benchmark.pedantic(
        build_figure, args=(get_result,), rounds=1, iterations=1
    )
    emit(results_dir, "fig6_cycles", fig.to_text())

    # 4-tier systems cycle more than 2-tier (paper: large cycles occur
    # more often in complex architectures like EXP3).
    assert fig.value("EXP3 >10C", "Default") >= fig.value("EXP1 >10C", "Default")
    assert fig.value("EXP4 >10C", "Default") >= fig.value("EXP1 >10C", "Default")

    # The DVFS-bearing hybrid suppresses deep sleep/wake swings versus
    # plain adaptive allocation on the hot stack.
    assert (
        fig.value("EXP4 >20C", "Adapt3D&DVFS_TT")
        <= fig.value("EXP4 >20C", "Adapt3D")
    )
