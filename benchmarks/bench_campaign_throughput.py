"""Campaign executor throughput: serial vs parallel vs resume.

Runs one 8-run campaign (2 stacks x 2 policies x 2 seeds) three ways:

1. serial backend into a fresh store,
2. parallel backend into a fresh store,
3. the same parallel campaign again (resume: everything loads from the
   store, nothing is simulated).

Emits ``BENCH_campaign.json`` with runs/minute per backend, the
parallel speedup, and the resume time. On a >= 4-core machine the
parallel backend must be >= 2x faster than serial; the resume pass must
be near-instant everywhere.
"""

import json
import os
import time

import numpy as np
import pytest

from repro.campaign import CampaignExecutor, CampaignSpec, ResultStore

from benchmarks.conftest import BENCH_SEED, emit

CAMPAIGN = CampaignSpec(
    name="throughput",
    exp_ids=(1, 2),
    policies=("Default", "Adapt3D"),
    durations_s=(90.0,),
    dpm=(False,),
    seeds=(BENCH_SEED, BENCH_SEED + 1),
)


def _timed_campaign(store, backend, max_workers=None):
    executor = CampaignExecutor(
        store=store, backend=backend, max_workers=max_workers
    )
    start = time.perf_counter()
    run = executor.run_campaign(CAMPAIGN)
    elapsed = time.perf_counter() - start
    assert not run.failed(), f"campaign runs failed: {run.failed()}"
    return run, elapsed


def test_campaign_throughput(results_dir, tmp_path):
    n_runs = len(CAMPAIGN.expand())
    assert n_runs == 8
    cpus = len(os.sched_getaffinity(0))
    workers = min(8, cpus)

    serial_store = ResultStore(tmp_path / "serial")
    parallel_store = ResultStore(tmp_path / "parallel")

    serial_run, serial_s = _timed_campaign(serial_store, "serial")
    parallel_run, parallel_s = _timed_campaign(
        parallel_store, "parallel", max_workers=workers
    )
    resume_run, resume_s = _timed_campaign(
        parallel_store, "parallel", max_workers=workers
    )

    assert serial_run.counts() == {"ok": n_runs}
    assert parallel_run.counts() == {"ok": n_runs}
    assert resume_run.counts() == {"cached": n_runs}

    # Backends must agree bit-for-bit on every run.
    for key in CAMPAIGN.keys():
        np.testing.assert_array_equal(
            serial_store.load(key).unit_temps_k,
            parallel_store.load(key).unit_temps_k,
        )

    speedup = serial_s / parallel_s
    payload = {
        "campaign_runs": n_runs,
        "simulated_s_per_run": CAMPAIGN.durations_s[0],
        "cpus": cpus,
        "workers": workers,
        "serial_s": round(serial_s, 3),
        "parallel_s": round(parallel_s, 3),
        "resume_s": round(resume_s, 3),
        "serial_runs_per_minute": round(60.0 * n_runs / serial_s, 1),
        "parallel_runs_per_minute": round(60.0 * n_runs / parallel_s, 1),
        "resume_runs_per_minute": round(60.0 * n_runs / resume_s, 1),
        "parallel_speedup": round(speedup, 2),
        "resume_speedup_vs_serial": round(serial_s / resume_s, 1),
    }
    path = results_dir / "BENCH_campaign.json"
    path.write_text(json.dumps(payload, indent=2) + "\n")
    emit(results_dir, "campaign_throughput", json.dumps(payload, indent=2))

    # Resume must be near-instant: no simulation, just store loads.
    assert resume_s < max(1.5, 0.25 * serial_s)

    # The acceptance bar: >= 2x wall-clock speedup on a 4-core machine.
    # On smaller machines the measurement is still emitted but the bar
    # cannot physically be met, so it is not enforced.
    if cpus >= 4:
        assert speedup >= 2.0, f"parallel speedup {speedup:.2f} < 2.0"
    else:
        print(f"[campaign-throughput] only {cpus} usable CPUs; "
              f"speedup {speedup:.2f} recorded, 2x bar requires >= 4 cores")
