"""Table II regeneration: thermal model and floorplan parameters.

Reads every Table II value back out of the instantiated models (not the
constants module) so the table reflects what the simulator actually
uses.
"""

import pytest

from repro.analysis.tables import format_table
from repro.floorplan.experiments import build_experiment
from repro.floorplan.ultrasparc import CORE_AREA_M2, L2_AREA_M2
from repro.thermal.stack import build_stack

from benchmarks.conftest import emit


def build_table():
    config = build_experiment(1)
    stack = build_stack(config)
    die = dict(stack.die_layers())[2]
    core = config.layers[0]["L0_core0"]
    cache = config.layers[1]["L1_l2_0"]
    rows = [
        ["Die Thickness (one stack)", "0.15 mm", f"{die.thickness_m * 1e3:.2f} mm"],
        ["Area per Core", "10 mm2", f"{core.area * 1e6:.1f} mm2"],
        ["Area per L2 Cache", "19 mm2", f"{cache.area * 1e6:.1f} mm2"],
        [
            "Total Area of Each Layer",
            "115 mm2",
            f"{config.layers[0].area * 1e6:.1f} mm2",
        ],
        [
            "Convection Capacitance",
            "140 J/K",
            f"{stack.convection_capacitance:.0f} J/K",
        ],
        [
            "Convection Resistance",
            "0.1 K/W",
            f"{stack.convection_resistance:.2f} K/W",
        ],
        [
            "Interlayer Material Thickness (3D)",
            "0.02 mm",
            f"{die.interface_thickness_m * 1e3:.3f} mm",
        ],
        [
            "Interlayer Material Resistivity",
            "0.25 mK/W (0.23 joint)",
            f"{die.interface_resistivity:.2f} mK/W (TSV-adjusted)",
        ],
    ]
    return rows, config, stack, die, core, cache


def test_table2_parameters(benchmark, results_dir):
    rows, config, stack, die, core, cache = benchmark.pedantic(
        build_table, rounds=1, iterations=1
    )
    text = format_table(
        ["Parameter", "Paper", "Model"],
        rows,
        title="Table II — thermal model and floorplan parameters",
    )
    emit(results_dir, "table2_parameters", text)

    assert die.thickness_m == pytest.approx(0.15e-3)
    assert core.area == pytest.approx(CORE_AREA_M2)
    assert cache.area == pytest.approx(L2_AREA_M2)
    assert config.layers[0].area == pytest.approx(115e-6)
    assert stack.convection_capacitance == pytest.approx(140.0)
    assert stack.convection_resistance == pytest.approx(0.1)
    assert die.interface_thickness_m == pytest.approx(0.02e-3)
    assert die.interface_resistivity == pytest.approx(0.23)
