"""Figure 2 regeneration: interlayer resistivity vs TSV density.

The paper examines via densities up to ~2% (10 um vias, 10 um keep-out)
and settles on 1024 vias (< 1% area overhead, > 8 vias/mm²) for a joint
resistivity of ~0.23 mK/W.
"""

import pytest

from repro.analysis.tables import format_table
from repro.floorplan.ultrasparc import LAYER_AREA_M2
from repro.thermal.tsv import (
    area_overhead,
    default_density_sweep,
    joint_resistivity,
    joint_resistivity_for_via_count,
    vias_per_mm2,
)

from benchmarks.conftest import emit


def build_series():
    rows = [
        [f"{density * 100:.2f}%", round(joint_resistivity(density), 4)]
        for density in default_density_sweep(n_points=11)
    ]
    return rows


def test_fig2_tsv_resistivity(benchmark, results_dir):
    rows = benchmark.pedantic(build_series, rounds=1, iterations=1)

    paper_rho = joint_resistivity_for_via_count(1024, LAYER_AREA_M2)
    footer = [
        "",
        "Paper operating point (1024 vias on 115 mm2):",
        f"  joint resistivity : {paper_rho:.4f} mK/W (paper: 0.23)",
        f"  area overhead     : {100 * area_overhead(1024, LAYER_AREA_M2):.2f}% (paper: <1%)",
        f"  via density       : {vias_per_mm2(1024, LAYER_AREA_M2):.1f} vias/mm2 (paper: >8)",
    ]
    text = (
        format_table(
            ["d_TSV", "joint resistivity (mK/W)"],
            rows,
            title="Figure 2 — effect of vias on interface material resistivity",
        )
        + "\n".join(footer)
    )
    emit(results_dir, "fig2_tsv_resistivity", text)

    values = [row[1] for row in rows]
    assert values[0] == pytest.approx(0.25)
    assert all(a >= b for a, b in zip(values, values[1:]))
    assert paper_rho == pytest.approx(0.23, abs=0.01)
