"""Figure 3 regeneration: thermal hot spots (without DPM) + performance.

For every policy and every EXP configuration: the percentage of time
spent above 85 C, plus the performance line (job completion delay
normalized to Default, 1.0 = no overhead).

Expected shape (paper §V-B):

- Default/adaptive-only rows carry the most hot spots on the 4-tier
  stacks; the hybrid policies the fewest among high-throughput options,
- the 2-tier stacks operate below the threshold (our calibration runs
  them cooler than the paper's testbed — see EXPERIMENTS.md),
- the performance line shows DVFS/CGate/Migr paying real overhead while
  Adapt3D stays at Default-level performance.
"""

import pytest

from repro.analysis.figures import FigureSeries
from repro.analysis.runner import RunSpec
from repro.campaign import CampaignSpec
from repro.core.registry import policy_names
from repro.metrics.performance import normalized_delay
from repro.metrics.report import summarize

from benchmarks.conftest import BENCH_DURATION_S, BENCH_SEED, emit

EXPS = (1, 2, 3, 4)

# The whole figure as one declarative grid: every policy on every stack,
# no DPM. The campaign executor fills the session store (skipping runs
# a previous bench invocation already produced); the figure is then
# assembled from stored results. One sensor-noise point rides along as
# an extra run: the same hottest-stack Adapt3D setup with 1 K Gaussian
# sensor noise, exercising the campaign noise axis end to end (its
# hot-spot number prints next to the ideal-sensor figure).
NOISE_SIGMA_K = 1.0
NOISE_RUN = RunSpec(
    exp_id=4, policy="Adapt3D", duration_s=BENCH_DURATION_S,
    seed=BENCH_SEED, sensor_noise_sigma=NOISE_SIGMA_K,
)
CAMPAIGN = CampaignSpec(
    name="fig3_hotspots_nodpm",
    exp_ids=EXPS,
    policies=tuple(policy_names()),
    durations_s=(BENCH_DURATION_S,),
    dpm=(False,),
    seeds=(BENCH_SEED,),
    extra_runs=(NOISE_RUN,),
)


def build_figure(executor, get_result):
    run = executor.run_campaign(CAMPAIGN)
    assert not run.failed(), f"campaign runs failed: {run.failed()}"
    policies = policy_names()
    fig = FigureSeries(
        "Figure 3 — thermal hot spots (no DPM), % time above 85 C, "
        "and normalized performance delay",
        groups=policies,
    )
    for exp in EXPS:
        fig.add_series(
            f"EXP{exp} hot%",
            [
                summarize(get_result(exp, policy, False)).hot_spot_pct
                for policy in policies
            ],
        )
    # Performance line: averaged over the stacks, normalized to Default.
    delays = []
    for policy in policies:
        values = []
        for exp in EXPS:
            base = get_result(exp, "Default", False)
            values.append(
                normalized_delay(get_result(exp, policy, False).jobs, base.jobs)
            )
        delays.append(sum(values) / len(values))
    fig.add_series("perf (delay, x Default)", delays)
    return fig


def test_fig3_hotspots_without_dpm(
    benchmark, results_dir, campaign_executor, get_result
):
    fig = benchmark.pedantic(
        build_figure, args=(campaign_executor, get_result), rounds=1,
        iterations=1,
    )
    # The sensor-noise extra point (EXP-4 Adapt3D, 1 K sigma) vs its
    # ideal-sensor twin: noisy sensors blur the allocator's view, so the
    # hot-spot number should stay in the same regime, not collapse.
    from repro.campaign import run_key

    noisy = summarize(
        campaign_executor.run_specs([NOISE_RUN])[run_key(NOISE_RUN)]
    ).hot_spot_pct
    ideal = fig.value("EXP4 hot%", "Adapt3D")
    text = fig.to_text() + (
        f"\nsensor-noise point: EXP4 Adapt3D at sigma={NOISE_SIGMA_K:.0f} K "
        f"-> hot% {noisy:.2f} (ideal sensors {ideal:.2f})"
    )
    emit(results_dir, "fig3_hotspots_nodpm", text)

    # 4-tier stacks suffer far more hot spots than 2-tier (paper's
    # central 3D observation).
    assert fig.value("EXP4 hot%", "Default") > fig.value("EXP1 hot%", "Default")
    assert fig.value("EXP3 hot%", "Default") > fig.value("EXP1 hot%", "Default")

    # DVFS-bearing policies beat Default on the hot stacks.
    for policy in ("DVFS_TT", "DVFS_Util", "DVFS_FLP", "Adapt3D&DVFS_TT"):
        assert fig.value("EXP4 hot%", policy) < fig.value("EXP4 hot%", "Default")

    # Adapt3D allocation is performance-neutral; throttling is not.
    assert fig.value("perf (delay, x Default)", "Adapt3D") < 1.05
    assert fig.value("perf (delay, x Default)", "CGate") > 1.02

    # Hybrids keep DVFS-class thermals at lower or equal overhead than
    # gating/migration.
    assert fig.value("perf (delay, x Default)", "Adapt3D&DVFS_TT") < fig.value(
        "perf (delay, x Default)", "Migr"
    )
