"""Figure 1 regeneration: the EXP-1..4 floorplans, rendered as ASCII.

Legend: ``C`` core, ``$`` L2 bank, ``x`` crossbar, ``-`` misc logic.
"""

from repro.floorplan.experiments import build_experiment

from benchmarks.conftest import emit


def render_all():
    blocks = []
    for exp_id in (1, 2, 3, 4):
        config = build_experiment(exp_id)
        blocks.append(f"=== EXP-{exp_id}: {config.description} ===")
        for index, plan in enumerate(config.layers):
            position = "adjacent to heat sink" if index == 0 else f"tier {index}"
            blocks.append(f"-- layer {index} ({position}): {plan.name}")
            blocks.append(plan.to_ascii(cols=44, rows=8))
        blocks.append("")
    return "\n".join(blocks)


def test_fig1_floorplans(benchmark, results_dir):
    art = benchmark.pedantic(render_all, rounds=1, iterations=1)
    emit(results_dir, "fig1_floorplans", art)

    assert "EXP-1" in art and "EXP-4" in art
    assert "C" in art and "$" in art and "x" in art
