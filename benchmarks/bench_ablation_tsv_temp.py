"""Ablation: TSV density's effect on the temperature profile (§IV-C).

The paper justifies the homogeneous-TSV model by observing that even at
1-2% density the effect on the temperature profile is limited to a few
degrees. This bench sweeps the density through the full thermal model
on EXP-1 and EXP-3 steady states under full load.
"""

from dataclasses import replace

import pytest

from repro.analysis.tables import format_table
from repro.floorplan.experiments import build_experiment
from repro.thermal.model import ThermalModel
from repro.thermal.tsv import joint_resistivity

from benchmarks.conftest import emit

DENSITIES = (0.0, 0.005, 0.01, 0.02)


def peak_for(exp_id, density):
    config = replace(
        build_experiment(exp_id),
        interlayer_resistivity=joint_resistivity(density),
    )
    model = ThermalModel(config, nrows=6, ncols=6)
    powers = {
        name: 4.0 if model.unit_kind(name).value == "core" else 1.0
        for name in model.unit_names
    }
    steady = model.steady_state(powers)
    return max(steady.values()) - 273.15


def build_table():
    rows = []
    for exp_id in (1, 3):
        base = peak_for(exp_id, 0.0)
        for density in DENSITIES:
            peak = peak_for(exp_id, density)
            rows.append(
                [f"EXP{exp_id}", f"{density * 100:.1f}%",
                 round(peak, 2), round(base - peak, 3)]
            )
    return rows


def test_ablation_tsv_density_effect(benchmark, results_dir):
    rows = benchmark.pedantic(build_table, rounds=1, iterations=1)
    text = format_table(
        ["stack", "d_TSV", "peak C", "reduction vs no-TSV (C)"],
        rows,
        title="Ablation — TSV density effect on the steady-state peak",
    )
    emit(results_dir, "ablation_tsv_temp", text)

    # Denser vias always help, but only by a few degrees (paper §IV-C).
    for row in rows:
        assert 0.0 <= row[3] < 5.0
    exp3_reductions = [row[3] for row in rows if row[0] == "EXP3"]
    assert exp3_reductions == sorted(exp3_reductions)
