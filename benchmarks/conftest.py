"""Shared infrastructure for the figure/table regeneration benches.

Simulation results are persisted in a campaign :class:`ResultStore`
under ``benchmarks/results/campaign_store`` — Figures 4 and 5 share the
same runs, the performance series of Figure 3 reuses its hot-spot runs,
and a re-invoked bench session resumes by loading everything straight
from the store instead of re-simulating.

Every bench writes its regenerated table to ``benchmarks/results/`` so
the numbers survive pytest's output capture; they are also printed.

CAUTION: run keys hash the *spec* (exp, policy, duration, seed, ...),
not the simulator code. After changing simulation behavior, delete
``benchmarks/results/campaign_store`` (or the whole results dir) so the
figures are regenerated instead of served stale.
"""

from __future__ import annotations

from pathlib import Path
from typing import Dict

import pytest

from repro.analysis.runner import ExperimentRunner, RunSpec
from repro.campaign import CampaignExecutor, ResultStore, run_key
from repro.sched.engine import SimulationResult

# One simulated workload length for all figure benches. The paper ran
# 30-minute traces; 90 s is enough for the policy ordering to settle
# (see tests/test_integration.py) while keeping the bench suite fast.
BENCH_DURATION_S = 90.0
BENCH_SEED = 2009

RESULTS_DIR = Path(__file__).parent / "results"
STORE_DIR = RESULTS_DIR / "campaign_store"


def bench_spec(exp_id: int, policy: str, with_dpm: bool, **overrides) -> RunSpec:
    """The canonical RunSpec of one figure-bench simulation."""
    return RunSpec(
        exp_id=exp_id,
        policy=policy,
        duration_s=BENCH_DURATION_S,
        with_dpm=with_dpm,
        seed=BENCH_SEED,
        **overrides,
    )


@pytest.fixture(scope="session")
def runner() -> ExperimentRunner:
    return ExperimentRunner()


@pytest.fixture(scope="session")
def campaign_store() -> ResultStore:
    RESULTS_DIR.mkdir(exist_ok=True)
    return ResultStore(STORE_DIR)


@pytest.fixture(scope="session")
def campaign_executor(campaign_store, runner) -> CampaignExecutor:
    """Serial executor over the session store (benches run in-process;
    the throughput bench builds its own parallel executors)."""
    return CampaignExecutor(
        store=campaign_store, backend="serial", runner=runner
    )


@pytest.fixture(scope="session")
def get_result(campaign_executor):
    """Memoized (exp_id, policy, dpm) -> SimulationResult via the store."""
    memo: Dict[str, SimulationResult] = {}

    def fetch(exp_id: int, policy: str, with_dpm: bool) -> SimulationResult:
        spec = bench_spec(exp_id, policy, with_dpm)
        key = run_key(spec)
        if key not in memo:
            memo[key] = campaign_executor.run_specs([spec])[key]
        return memo[key]

    return fetch


@pytest.fixture(scope="session")
def results_dir() -> Path:
    RESULTS_DIR.mkdir(exist_ok=True)
    return RESULTS_DIR


def emit(results_dir: Path, name: str, text: str) -> None:
    """Print a regenerated table and persist it under results/."""
    print()
    print(text)
    (results_dir / f"{name}.txt").write_text(text + "\n")
