"""Shared infrastructure for the figure/table regeneration benches.

Simulation results are cached per (exp, policy, dpm) for the whole
bench session — Figures 4 and 5 share the same runs, and the
performance series of Figure 3 reuses its hot-spot runs.

Every bench writes its regenerated table to ``benchmarks/results/`` so
the numbers survive pytest's output capture; they are also printed.
"""

from __future__ import annotations

from pathlib import Path
from typing import Dict, Tuple

import pytest

from repro.analysis.runner import ExperimentRunner, RunSpec
from repro.sched.engine import SimulationResult

# One simulated workload length for all figure benches. The paper ran
# 30-minute traces; 90 s is enough for the policy ordering to settle
# (see tests/test_integration.py) while keeping the bench suite fast.
BENCH_DURATION_S = 90.0
BENCH_SEED = 2009

RESULTS_DIR = Path(__file__).parent / "results"


@pytest.fixture(scope="session")
def runner() -> ExperimentRunner:
    return ExperimentRunner()


@pytest.fixture(scope="session")
def sim_cache() -> Dict[Tuple[int, str, bool], SimulationResult]:
    return {}


@pytest.fixture(scope="session")
def get_result(runner, sim_cache):
    """Memoized (exp_id, policy, dpm) -> SimulationResult."""

    def fetch(exp_id: int, policy: str, with_dpm: bool) -> SimulationResult:
        key = (exp_id, policy, with_dpm)
        if key not in sim_cache:
            sim_cache[key] = runner.run(
                RunSpec(
                    exp_id=exp_id,
                    policy=policy,
                    duration_s=BENCH_DURATION_S,
                    with_dpm=with_dpm,
                    seed=BENCH_SEED,
                )
            )
        return sim_cache[key]

    return fetch


@pytest.fixture(scope="session")
def results_dir() -> Path:
    RESULTS_DIR.mkdir(exist_ok=True)
    return RESULTS_DIR


def emit(results_dir: Path, name: str, text: str) -> None:
    """Print a regenerated table and persist it under results/."""
    print()
    print(text)
    (results_dir / f"{name}.txt").write_text(text + "\n")
