"""Table I regeneration: workload characteristics of the 8 benchmarks.

Runs each benchmark's synthetic workload uncontended and reports the
measured average utilization next to the published value, plus the
L2 miss / FP metadata carried by the model. The measured utilization
must track Table I — that is the substitution-validity check for the
synthetic traces (DESIGN.md §3).
"""

import pytest

from repro.analysis.tables import format_table
from repro.workload.benchmarks import benchmark, benchmark_names
from repro.workload.generator import SyntheticWorkload

from benchmarks.conftest import emit

THREADS = 8
DURATION_S = 1200.0


def measured_utilization(name: str) -> float:
    workload = SyntheticWorkload([(benchmark(name), THREADS)], seed=7)
    busy = 0.0
    arrivals = workload.initial_arrivals()
    while arrivals:
        arrivals.sort(key=lambda pair: pair[0])
        time, job = arrivals.pop(0)
        if time >= DURATION_S:
            continue
        busy += min(job.work_s, DURATION_S - time)
        arrivals.append(workload.next_arrival(job.thread_id, time + job.work_s))
    return busy / (DURATION_S * THREADS)


def build_table():
    rows = []
    for name in benchmark_names():
        spec = benchmark(name)
        util = measured_utilization(name)
        rows.append(
            [
                name,
                spec.avg_util_pct,
                round(100.0 * util, 2),
                spec.l2_imiss,
                spec.l2_dmiss,
                spec.fp_per_100k,
            ]
        )
    return rows


def test_table1_workload_characteristics(benchmark, results_dir):
    rows = benchmark.pedantic(build_table, rounds=1, iterations=1)
    text = format_table(
        ["Benchmark", "Util% (paper)", "Util% (measured)",
         "L2 I-Miss", "L2 D-Miss", "FP instr"],
        rows,
        title="Table I — workload characteristics (paper vs measured)",
    )
    emit(results_dir, "table1_workloads", text)

    for row in rows:
        paper, measured = row[1], row[2]
        assert measured == pytest.approx(paper, rel=0.25), row[0]
