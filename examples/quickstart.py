#!/usr/bin/env python3
"""Quickstart: simulate one DTM policy on a 3D stack and read the metrics.

Builds the paper's EXP-3 system (4 tiers, 16 cores, UltraSPARC T1
derived), runs the proposed Adapt3D policy against the Default OS load
balancer on the same consolidated-server workload, and prints the
paper's headline metrics for both.

Run:  python examples/quickstart.py
"""

from repro import ExperimentRunner, RunSpec, summarize


def main() -> None:
    runner = ExperimentRunner()

    print("Simulating EXP-3 (4 tiers, 16 cores) for 120 s of server load...")
    baseline = runner.run(
        RunSpec(exp_id=3, policy="Default", duration_s=120.0, with_dpm=True)
    )
    adapt3d = runner.run(
        RunSpec(exp_id=3, policy="Adapt3D", duration_s=120.0, with_dpm=True)
    )

    for result in (baseline, adapt3d):
        report = summarize(result, baseline)
        print(f"\n=== {report.policy} ===")
        print(f"  hot spots (>85C)        : {report.hot_spot_pct:6.2f} % of time")
        print(f"  spatial gradients (>15C): {report.gradient_pct:6.2f} % of time")
        print(f"  thermal cycles (>20C)   : {report.cycle_pct:6.2f} % of windows")
        print(f"  peak temperature        : {report.peak_temperature_c:6.1f} C")
        print(f"  mean job response       : {report.mean_response_s * 1e3:6.1f} ms")
        print(f"  delay vs Default        : {report.normalized_delay:6.3f} x")
        print(f"  average chip power      : {report.avg_power_w:6.1f} W")
        print(f"  completed jobs          : {len(result.completed_jobs()):6d}")


if __name__ == "__main__":
    main()
