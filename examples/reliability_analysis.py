#!/usr/bin/env python3
"""Scenario: projecting relative lifetime impact of DTM policies.

The paper's reliability argument (§I): hot spots accelerate
electromigration-class wear-out, and thermal cycles drive fatigue
failures (16x more frequent at ΔT = 20 C than 10 C). This example runs
three policies on the 4-tier stack and converts their temperature
histories into relative wear figures with the rainflow +
Coffin-Manson + Black's-equation pipeline, then exports the raw series
to CSV for external plotting.

Run:  python examples/reliability_analysis.py
"""

import tempfile
from pathlib import Path

from repro import ExperimentRunner, RunSpec
from repro.analysis.result_io import export_result
from repro.metrics.lifetime import analyze_lifetime

POLICIES = ["Default", "DVFS_TT", "Adapt3D&DVFS_TT"]


def main() -> None:
    runner = ExperimentRunner()
    print("EXP-4 (4 tiers, 16 cores), DPM on, 120 s each:\n")
    header = (
        f'{"policy":18s} {"worst EM accel":>15} {"total fatigue":>14} '
        f'{"worst core":>11}'
    )
    print(header)
    print("-" * len(header))

    reports = {}
    for policy in POLICIES:
        result = runner.run(
            RunSpec(exp_id=4, policy=policy, duration_s=120.0, with_dpm=True)
        )
        report = analyze_lifetime(result)
        reports[policy] = (result, report)
        worst_core = max(
            report.per_core, key=lambda c: report.per_core[c].em_acceleration
        )
        print(
            f"{policy:18s} {report.worst_em_acceleration:15.2f} "
            f"{report.total_cycling_damage:14.1f} {worst_core:>11}"
        )

    base = reports["Default"][1]
    hybrid = reports["Adapt3D&DVFS_TT"][1]
    ratio = base.worst_em_acceleration / hybrid.worst_em_acceleration
    print(
        f"\nThe hybrid policy's most-stressed core wears "
        f"{ratio:.2f}x slower (electromigration) than under Default."
    )

    out_dir = Path(tempfile.mkdtemp(prefix="repro_reliability_"))
    paths = export_result(reports["Default"][0], out_dir / "default")
    print(f"\nRaw series exported for external plotting:")
    for path in paths:
        print(f"  {path}")


if __name__ == "__main__":
    main()
