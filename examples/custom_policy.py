#!/usr/bin/env python3
"""Extending the library: writing and evaluating a custom DTM policy.

Implements 'CoolestFirst' — a simple temperature-greedy allocator that
always dispatches to the coolest shortest-queue core — plugs it into
the engine next to the paper's policies, and compares it against
Adapt3D. The exercise shows why the paper's probability-based balancing
beats naive greedy placement: greedy chases the coolest core and
ping-pongs load, while Adapt3D's smoothed history spreads it.

Run:  python examples/custom_policy.py
"""

from repro import ExperimentRunner, RunSpec, summarize
from repro.core.base import AllocationContext, Policy
from repro.workload.job import Job


class CoolestFirst(Policy):
    """Greedy thermal allocation: coolest core among the least loaded."""

    name = "CoolestFirst"

    def select_core(self, job: Job, ctx: AllocationContext) -> str:
        shortest = min(ctx.queue_lengths.values())
        candidates = [
            core
            for core in self.system.core_names
            if ctx.queue_lengths[core] == shortest
        ]
        return min(candidates, key=lambda core: ctx.temperatures_k[core])


def main() -> None:
    runner = ExperimentRunner()
    spec = RunSpec(exp_id=4, policy="Default", duration_s=120.0, with_dpm=True)

    baseline = runner.run(spec)

    # Plug the custom policy into a fresh engine.
    engine = runner.build_engine(spec)
    engine.policy = CoolestFirst()
    engine.policy.attach(engine.system_view)
    custom = engine.run()

    adapt3d = runner.build_engine(spec)
    from repro.core.adapt3d import Adapt3D

    adapt3d.policy = Adapt3D()
    adapt3d.policy.attach(adapt3d.system_view)
    adaptive = adapt3d.run()

    print(f'{"policy":14s} {"hot%":>7} {"grad%":>7} {"cycles%":>8} {"delay":>7}')
    for result in (baseline, custom, adaptive):
        report = summarize(result, baseline)
        print(
            f"{report.policy:14s} {report.hot_spot_pct:7.2f} "
            f"{report.gradient_pct:7.2f} {report.cycle_pct:8.2f} "
            f"{report.normalized_delay:7.3f}"
        )


if __name__ == "__main__":
    main()
