#!/usr/bin/env python3
"""Scenario: consolidating web + database load onto a 3D server chip.

The paper's motivating workload is a typical server (SLAMD web serving,
MySQL, mixed loads — Table I). This example consolidates a heavy
web+database mix onto the 2-tier EXP-1 and the 4-tier EXP-3 systems and
asks the operational question: which DTM policy keeps the 16-core stack
reliable, and what does it cost in job latency?

Run:  python examples/server_consolidation.py
"""

from repro import ExperimentRunner, RunSpec, summarize

# A heavier-than-default mix: all threads are server-class.
SERVER_MIX_8 = (("Web-high", 4), ("Web&DB", 2), ("Database", 2))
SERVER_MIX_16 = (("Web-high", 8), ("Web&DB", 4), ("Database", 4))

POLICIES = ["Default", "DVFS_TT", "Migr", "Adapt3D", "Adapt3D&DVFS_TT"]


def evaluate(runner: ExperimentRunner, exp_id: int, mix) -> None:
    print(f"\n=== EXP-{exp_id} under the consolidated server mix ===")
    header = f'{"policy":18s} {"hot%":>7} {"grad%":>7} {"peak C":>7} {"delay":>7} {"energy kJ":>10}'
    print(header)
    print("-" * len(header))
    results = {}
    for policy in POLICIES:
        results[policy] = runner.run(
            RunSpec(
                exp_id=exp_id,
                policy=policy,
                duration_s=120.0,
                with_dpm=True,
                benchmark_mix=mix,
            )
        )
    baseline = results["Default"]
    for policy, result in results.items():
        report = summarize(result, baseline)
        print(
            f"{policy:18s} {report.hot_spot_pct:7.2f} {report.gradient_pct:7.2f} "
            f"{report.peak_temperature_c:7.1f} {report.normalized_delay:7.3f} "
            f"{report.energy_j / 1e3:10.2f}"
        )


def main() -> None:
    runner = ExperimentRunner()
    evaluate(runner, 1, SERVER_MIX_8)
    evaluate(runner, 3, SERVER_MIX_16)
    print(
        "\nReading: the 2-tier system tolerates the mix under any policy; "
        "the 4-tier stack needs the 3D-aware allocation (alone or hybrid) "
        "to stay in the reliable band without the latency cost of "
        "migration or gating."
    )


if __name__ == "__main__":
    main()
