#!/usr/bin/env python3
"""Scenario: choosing a 3D floorplanning strategy at design time.

The paper evaluates four stack organizations (Figure 1): separate
core/cache tiers (EXP-1/3) versus mixed tiers (EXP-2/4), at two and
four layers. This example runs the same workload over all four and
reports the thermal/design trade-offs, including the steady-state
thermal indices that quantify each core's hot-spot susceptibility.

Run:  python examples/design_space_exploration.py
"""

from collections import defaultdict

from repro import ExperimentRunner, RunSpec, build_experiment, summarize
from repro.core.thermal_index import compute_thermal_indices
from repro.power.chip_power import ChipPowerModel
from repro.thermal.model import ThermalModel


def describe_indices(exp_id: int) -> None:
    config = build_experiment(exp_id)
    thermal = ThermalModel(config)
    power = ChipPowerModel(config)
    indices = compute_thermal_indices(thermal, power)
    by_layer = defaultdict(list)
    for core, alpha in indices.items():
        by_layer[config.core_layer_map()[core]].append(alpha)
    parts = [
        f"tier {layer}: alpha {min(v):.2f}-{max(v):.2f}"
        for layer, v in sorted(by_layer.items())
    ]
    print(f"  thermal indices   : {'; '.join(parts)}")


def main() -> None:
    runner = ExperimentRunner()
    print("Same workload intensity per core, Adapt3D + DPM, 120 s:\n")
    for exp_id in (1, 2, 3, 4):
        config = build_experiment(exp_id)
        result = runner.run(
            RunSpec(exp_id=exp_id, policy="Adapt3D", duration_s=120.0, with_dpm=True)
        )
        report = summarize(result)
        print(f"=== EXP-{exp_id}: {config.description} ===")
        print(f"  tiers x cores     : {config.n_layers} x {config.n_cores}")
        print(f"  peak temperature  : {report.peak_temperature_c:.1f} C")
        print(f"  hot spots         : {report.hot_spot_pct:.2f} % of time")
        print(f"  spatial gradients : {report.gradient_pct:.2f} % of time")
        print(f"  average power     : {report.avg_power_w:.1f} W")
        describe_indices(exp_id)
        print()

    print(
        "Reading: stacking four active tiers roughly doubles power in the\n"
        "same footprint; the mixed-tier EXP-4 runs hottest because every\n"
        "tier carries cores, while EXP-1/EXP-3 park the cache tiers'\n"
        "low-power SRAM between the logic tiers. The thermal index spread\n"
        "shows why a 3D-aware policy matters: upper-tier cores are\n"
        "structurally more susceptible."
    )


if __name__ == "__main__":
    main()
