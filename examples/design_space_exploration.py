#!/usr/bin/env python3
"""Scenario: choosing a 3D floorplanning strategy at design time.

The paper evaluates four stack organizations (Figure 1): separate
core/cache tiers (EXP-1/3) versus mixed tiers (EXP-2/4), at two and
four layers. This example declares the whole study as one campaign —
the same workload over all four stacks — runs it through the campaign
executor (in parallel when the machine has spare cores), and reports
the thermal/design trade-offs, including the steady-state thermal
indices that quantify each core's hot-spot susceptibility.

Results persist in a campaign store, so a second invocation prints the
report straight from disk instead of re-simulating. Point
``REPRO_CAMPAIGN_STORE`` somewhere else (or delete the store) to force
a fresh run.

Run:  python examples/design_space_exploration.py
"""

import os
from collections import defaultdict
from pathlib import Path

from repro import build_experiment, summarize
from repro.campaign import CampaignExecutor, CampaignSpec, ResultStore, run_key
from repro.core.thermal_index import compute_thermal_indices
from repro.power.chip_power import ChipPowerModel
from repro.thermal.model import ThermalModel

CAMPAIGN = CampaignSpec(
    name="design_space_exploration",
    exp_ids=(1, 2, 3, 4),
    policies=("Adapt3D",),
    durations_s=(120.0,),
    dpm=(True,),
)

STORE_DIR = Path(
    os.environ.get(
        "REPRO_CAMPAIGN_STORE",
        Path.home() / ".cache" / "repro-dtm" / "design_space",
    )
)


def describe_indices(exp_id: int) -> None:
    config = build_experiment(exp_id)
    thermal = ThermalModel(config)
    power = ChipPowerModel(config)
    indices = compute_thermal_indices(thermal, power)
    by_layer = defaultdict(list)
    for core, alpha in indices.items():
        by_layer[config.core_layer_map()[core]].append(alpha)
    parts = [
        f"tier {layer}: alpha {min(v):.2f}-{max(v):.2f}"
        for layer, v in sorted(by_layer.items())
    ]
    print(f"  thermal indices   : {'; '.join(parts)}")


def main() -> None:
    store = ResultStore(STORE_DIR)
    workers = os.cpu_count() or 1
    executor = CampaignExecutor(
        store=store,
        backend="parallel" if workers > 1 else "serial",
        progress=lambda event, key, _detail: print(f"  [{event}] {key}"),
    )
    print(f"Campaign {CAMPAIGN.name}: {len(CAMPAIGN.expand())} runs, "
          f"store at {STORE_DIR}\n")
    run = executor.run_campaign(CAMPAIGN)
    if run.failed():
        raise SystemExit(f"campaign runs failed: {run.failed()}")
    print("\nSame workload intensity per core, Adapt3D + DPM, 120 s:\n")
    for spec in CAMPAIGN.expand():
        config = build_experiment(spec.exp_id)
        report = summarize(store.load(run_key(spec)))
        print(f"=== EXP-{spec.exp_id}: {config.description} ===")
        print(f"  tiers x cores     : {config.n_layers} x {config.n_cores}")
        print(f"  peak temperature  : {report.peak_temperature_c:.1f} C")
        print(f"  hot spots         : {report.hot_spot_pct:.2f} % of time")
        print(f"  spatial gradients : {report.gradient_pct:.2f} % of time")
        print(f"  average power     : {report.avg_power_w:.1f} W")
        describe_indices(spec.exp_id)
        print()

    print(
        "Reading: stacking four active tiers roughly doubles power in the\n"
        "same footprint; the mixed-tier EXP-4 runs hottest because every\n"
        "tier carries cores, while EXP-1/EXP-3 park the cache tiers'\n"
        "low-power SRAM between the logic tiers. The thermal index spread\n"
        "shows why a 3D-aware policy matters: upper-tier cores are\n"
        "structurally more susceptible."
    )


if __name__ == "__main__":
    main()
