#!/usr/bin/env python3
"""Replaying recorded utilization traces (mpstat-style) open loop.

The paper profiles real applications with mpstat at 1 s granularity.
This example shows the drop-in path for such recordings: parse mpstat
output, duplicate the 8-core trace for a 16-core stack (exactly what
the paper does for EXP-3/4), and replay it through the engine as an
open-loop job stream. Here the 'recording' is synthesized so the
example is self-contained — point ``parse_mpstat`` at a real capture to
use your own.

Run:  python examples/real_trace_replay.py
"""

import numpy as np

from repro import ExperimentRunner, RunSpec, summarize
from repro.sched.workload_source import TraceSource
from repro.workload.mpstat import parse_mpstat
from repro.workload.trace import UtilizationTrace


def synthesize_mpstat(n_cpus: int = 8, n_blocks: int = 120, seed: int = 3) -> str:
    """Fabricate an mpstat capture of a bursty web server."""
    rng = np.random.default_rng(seed)
    header = (
        "CPU minf mjf xcal  intr ithr  csw icsw migr smtx  srw syscl  "
        "usr sys  wt idl"
    )
    lines = []
    phase = np.zeros(n_cpus)
    for block in range(n_blocks):
        lines.append(header)
        phase = np.clip(phase + rng.normal(0.0, 0.15, n_cpus), 0.05, 0.95)
        for cpu in range(n_cpus):
            usr = int(phase[cpu] * 90)
            sys_pct = int(phase[cpu] * 8)
            idl = max(0, 100 - usr - sys_pct)
            lines.append(
                f"{cpu:3d}    1   0    0   200  100  110    1    5    3    "
                f"0   500   {usr:2d}   {sys_pct:1d}   0  {idl:2d}"
            )
    return "\n".join(lines)


def main() -> None:
    print("Parsing the mpstat capture...")
    trace = parse_mpstat(synthesize_mpstat(), benchmark_name="Web-med")
    print(
        f"  {trace.n_samples} samples x {trace.n_cores} cpus, "
        f"mean utilization {trace.mean_utilization():.2f}"
    )

    # The paper duplicates the 8-core workload for the 16-core stacks.
    trace16 = trace.duplicated(2)

    runner = ExperimentRunner()
    spec = RunSpec(exp_id=3, policy="Adapt3D", duration_s=trace16.duration_s,
                   with_dpm=True)
    engine = runner.build_engine(spec)
    engine.workload = TraceSource(trace16)
    result = engine.run()

    report = summarize(result)
    print(f"\nReplay on EXP-3 under {report.policy}:")
    print(f"  hot spots       : {report.hot_spot_pct:.2f} % of time")
    print(f"  peak temperature: {report.peak_temperature_c:.1f} C")
    print(f"  completed jobs  : {len(result.completed_jobs())}")


if __name__ == "__main__":
    main()
